package sim

import (
	"fmt"

	"p2go/internal/hashes"
	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
)

// Plan is an immutable, pre-lowered execution plan for one (program,
// config, options) triple. Building a Plan validates the configuration
// and — unless Options.Interpret is set or the program uses a construct
// the lowerer does not cover — compiles the parser, both controls, every
// table, and every reachable action body into flat arrays: field
// references become dense slot indexes, match keys become pre-shifted
// comparisons, action bodies become straight-line op lists, and hit/miss
// and if/else arms become jump targets. A Plan holds no mutable state, so
// one Plan is shared by every worker Switch of a sharded replay; Switch
// construction from a Plan only allocates register/counter/scratch state.
//
// When compilation is not possible the Plan still works: Switches built
// from it run the tree-walking interpreter, and the reason is reported
// through Switch.Engine so the fallback is visible instead of just slow.
type Plan struct {
	prog   *ir.Program
	cfg    *rt.Config
	opts   Options
	widths map[ir.FieldKey]int
	// tableRules and defaults snapshot the config at plan time so every
	// Switch built from this plan — and both engines inside one Switch —
	// sees the same rule set.
	tableRules map[string][]rt.Rule
	defaults   map[string]*rt.DefaultEntry

	c      *compiled // nil: interpreter fallback
	reason string    // why c is nil
}

// Engine reports the execution engine Switches built from this plan use:
// "compiled" with an empty reason, or "interpreter" with the fallback
// cause.
func (pl *Plan) Engine() (engine, reason string) {
	if pl.c != nil {
		return "compiled", ""
	}
	return "interpreter", pl.reason
}

// NewPlan validates the configuration against the program and lowers the
// pipeline. Validation errors are returned; lowering errors are recorded
// as the interpreter-fallback reason instead, because the interpreter can
// run (and fail at packet time with its own diagnostics) for any program
// that type-checks.
func NewPlan(prog *ir.Program, cfg *rt.Config, opts Options) (*Plan, error) {
	if cfg == nil {
		cfg = &rt.Config{}
	}
	if err := rt.Validate(cfg, prog); err != nil {
		return nil, err
	}
	if opts.Trailer != "" && prog.AST.Instance(opts.Trailer) == nil {
		return nil, fmt.Errorf("sim: trailer instance %q not declared", opts.Trailer)
	}
	pl := &Plan{
		prog:       prog,
		cfg:        cfg,
		opts:       opts,
		widths:     map[ir.FieldKey]int{},
		tableRules: map[string][]rt.Rule{},
		defaults:   map[string]*rt.DefaultEntry{},
	}
	for _, inst := range prog.AST.Instances {
		ht := prog.AST.HeaderType(inst.TypeName)
		for _, f := range ht.Fields {
			pl.widths[ir.FieldKey(inst.Name+"."+f.Name)] = f.Width
		}
	}
	for _, t := range prog.AST.Tables {
		pl.tableRules[t.Name] = cfg.ForTable(t.Name)
		pl.defaults[t.Name] = cfg.DefaultFor(t.Name)
	}
	if opts.Interpret {
		pl.reason = "forced"
		return pl, nil
	}
	c, err := compilePlan(pl)
	if err != nil {
		pl.reason = err.Error()
	} else {
		pl.c = c
	}
	return pl, nil
}

// cexpr is a lowered arithmetic expression. The P4_14 subset has no
// compound arithmetic, so every expression is either a constant (integer
// literal, or an action parameter bound to an installed rule's argument)
// or a field slot read.
type cexpr struct {
	isConst bool
	c       uint64
	slot    int32
}

func constExpr(v uint64) cexpr  { return cexpr{isConst: true, c: v} }
func slotExpr(slot int32) cexpr { return cexpr{slot: slot} }
func (e cexpr) eval(st *cstate) uint64 {
	if e.isConst {
		return e.c
	}
	return st.fields[e.slot]
}

// cBool is a lowered boolean expression tree. Unlike the interpreter's
// evalBool it cannot fail at packet time: every operand was resolved at
// plan time.
type cBool struct {
	kind uint8 // bValid, bCmp, bAnd, bOr, bNot
	inst int32 // bValid
	op   uint8 // bCmp: cmpEq..cmpGe
	l, r cexpr
	a, b *cBool
}

const (
	bValid = iota
	bCmp
	bAnd
	bOr
	bNot
)

const (
	cmpEq = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

// cInstr is one bytecode instruction of a lowered control block.
type cInstr struct {
	op   uint8 // ciApply, ciBrMiss, ciBrFalse, ciJump
	tbl  int32 // ciApply: table id
	tgt  int32 // branch/jump target pc
	cond *cBool
}

const (
	ciApply = iota
	ciBrMiss
	ciBrFalse
	ciJump
)

// cOp is one straight-line primitive of a lowered action body.
type cOp struct {
	kind uint8
	dst  int32 // destination field slot
	a, b cexpr
	res  int32  // register/counter/hash id
	mask uint64 // oRegWrite: register cell mask
}

const (
	oSet = iota
	oAdd
	oSub
	oAnd
	oOr
	oXor
	oMin
	oMax
	oDrop
	oRegRead
	oRegWrite
	oCount
	oHash
	// oBind evaluates a default-action argument expression into a scratch
	// slot at action entry, preserving the interpreter's bind-then-execute
	// order when an argument reads a field the body later modifies.
	oBind
)

// cBody is a lowered action invocation: the ops of one action with one
// specific argument binding (an installed rule's constants, or a default
// declaration's expressions).
type cBody struct {
	actionName string
	ops        []cOp
}

// cMatch is one pre-resolved match of an installed rule.
type cMatch struct {
	kind  uint8 // mExact, mAny, mLPM, mTernary, mRange
	value uint64
	mask  uint64
	hi    uint64
	shift uint8
}

const (
	mExact = iota
	mAny
	mLPM
	mTernary
	mRange
)

// cRule is one installed rule, lowered: matches pre-shifted/pre-masked,
// the LPM prefix sum and the Executed record precomputed, the action body
// constant-folded over the rule's arguments.
type cRule struct {
	matches  []cMatch
	prefix   int
	priority int
	body     cBody
	exec     Executed
}

// cKey is one component of a table's lookup key.
type cKey struct {
	valid bool  // valid-kind match: read the instance's validity bit
	inst  int32 // cKey.valid: instance id
	slot  int32 // otherwise: field slot
}

// cTable is one lowered table.
type cTable struct {
	name  string
	keys  []cKey // nil: read-less, always "hits"
	rules []cRule
	// def is the effective default action body (runtime override or
	// declared default); hasDef is false when the table has no default.
	hasDef   bool
	def      cBody
	defExec  Executed // read-less apply record (Hit true)
	missExec Executed // keyed-table miss record (Hit false)
}

// cPField is a (slot, width) pair used by parser extracts, select keys,
// hash inputs, and serialization.
type cPField struct {
	slot  int32
	width int
}

// cParserOp is one statement of a lowered parser state.
type cParserOp struct {
	extract bool
	inst    int32 // extract: instance id
	bits    int   // extract: header width
	fields  []cPField
	dst     int32 // set_metadata
	val     cexpr
}

// Parser next-state sentinels.
const (
	// nextIngress ends parsing and hands off to the ingress control.
	nextIngress = -1
	// nextStop ends parsing with no match and no default: the pipeline
	// still runs over whatever was parsed, exactly like the interpreter.
	nextStop = -2
)

// cSelCase is one lowered select arm.
type cSelCase struct {
	hasMask bool
	value   uint64
	mask    uint64
	next    int32
}

// cParserState is one lowered parser state.
type cParserState struct {
	ops []cParserOp
	// isSelect distinguishes the two return forms; plain returns use next.
	isSelect bool
	next     int32
	selOn    []cPField
	selCases []cSelCase
	// selDefault is the default arm's state, or -2 for "no default" (stop
	// parsing, run the pipeline).
	selDefault int32
}

// chash is a lowered field_list_calculation.
type chash struct {
	alg      hashes.Algorithm
	outWidth int
	fields   []cPField
	widths   []int // same order as fields, for bit packing
}

// cCalc is one deparser-side calculated-field update.
type cCalc struct {
	inst int32
	dst  int32
	hash int32 // chash id
}

// cEmit is the serialization write-back list of one header instance.
type cEmit struct {
	inst   int32
	fields []cPField
}

// cRegDecl mirrors one register array declaration.
type cRegDecl struct {
	name string
	mask uint64
	size int
}

// cCtrDecl mirrors one counter array declaration.
type cCtrDecl struct {
	name string
	size int
}

// compiled is the immutable lowered program shared by all Switches of a
// Plan.
type compiled struct {
	nSlots int
	mask   []uint64 // per-slot store mask (^0 for 64-bit fields)

	slotIngressPort int32
	slotEgressSpec  int32
	slotEgressPort  int32
	slotPacketLen   int32

	nInsts int

	hasParser bool
	parser    []cParserState
	start     int32

	ingress []cInstr
	egress  []cInstr // nil when the program has no egress control
	hasEgr  bool

	tables []cTable
	// maxKeys sizes the per-Switch key scratch buffer.
	maxKeys int

	regs []cRegDecl
	ctrs []cCtrDecl

	hashes []chash
	calcs  []cCalc

	emits       []cEmit
	trailer     *cEmit
	trailerZero []byte // zeroed trailer bytes, appended then written over

	neutralizeDrops bool

	// lower keeps the symbol tables so InstallRule can lower runtime rules
	// against the same slot/table ids. Read-only after compilation.
	lower *compiler
}

// compiler carries the symbol tables alive only during lowering.
type compiler struct {
	pl *Plan
	c  *compiled

	slotOf  map[ir.FieldKey]int32
	instOf  map[string]int32
	tableOf map[string]int32
	regOf   map[string]int32
	ctrOf   map[string]int32
	hashOf  map[string]int32
}

// compilePlan lowers the plan's program. Any unsupported construct aborts
// compilation with an error describing it; the caller falls back to the
// interpreter, which reproduces the interpreter's packet-time diagnostics
// for genuinely broken programs.
func compilePlan(pl *Plan) (*compiled, error) {
	ast := pl.prog.AST
	cc := &compiler{
		pl:      pl,
		c:       &compiled{neutralizeDrops: pl.opts.NeutralizeDrops},
		slotOf:  map[ir.FieldKey]int32{},
		instOf:  map[string]int32{},
		tableOf: map[string]int32{},
		regOf:   map[string]int32{},
		ctrOf:   map[string]int32{},
		hashOf:  map[string]int32{},
	}
	c := cc.c

	// Field slots and instance ids, in declaration order.
	for _, inst := range ast.Instances {
		cc.instOf[inst.Name] = int32(c.nInsts)
		c.nInsts++
		ht := ast.HeaderType(inst.TypeName)
		for _, f := range ht.Fields {
			key := ir.FieldKey(inst.Name + "." + f.Name)
			if _, dup := cc.slotOf[key]; dup {
				return nil, fmt.Errorf("sim: duplicate field %s", key)
			}
			cc.slotOf[key] = int32(c.nSlots)
			c.nSlots++
			m := ^uint64(0)
			if f.Width < 64 {
				m = 1<<uint(f.Width) - 1
			}
			c.mask = append(c.mask, m)
		}
	}
	var err error
	std := p4.StandardMetadataName
	if c.slotIngressPort, err = cc.slot(p4.FieldRef{Instance: std, Field: p4.FieldIngressPort}); err != nil {
		return nil, err
	}
	if c.slotEgressSpec, err = cc.slot(p4.FieldRef{Instance: std, Field: p4.FieldEgressSpec}); err != nil {
		return nil, err
	}
	if c.slotEgressPort, err = cc.slot(p4.FieldRef{Instance: std, Field: p4.FieldEgressPort}); err != nil {
		return nil, err
	}
	if c.slotPacketLen, err = cc.slot(p4.FieldRef{Instance: std, Field: p4.FieldPacketLength}); err != nil {
		return nil, err
	}

	// Register and counter arrays.
	for _, r := range ast.Registers {
		cc.regOf[r.Name] = int32(len(c.regs))
		m := ^uint64(0)
		if r.Width < 64 {
			m = 1<<uint(r.Width) - 1
		}
		c.regs = append(c.regs, cRegDecl{name: r.Name, mask: m, size: r.InstanceCount})
	}
	for _, ct := range ast.Counters {
		cc.ctrOf[ct.Name] = int32(len(c.ctrs))
		c.ctrs = append(c.ctrs, cCtrDecl{name: ct.Name, size: ct.InstanceCount})
	}

	// Tables (ids in declaration order), then controls referencing them.
	for _, t := range ast.Tables {
		cc.tableOf[t.Name] = int32(len(c.tables))
		ct, err := cc.lowerTable(t)
		if err != nil {
			return nil, err
		}
		if len(ct.keys) > c.maxKeys {
			c.maxKeys = len(ct.keys)
		}
		c.tables = append(c.tables, ct)
	}
	if pl.prog.Ingress == nil {
		return nil, fmt.Errorf("sim: program has no ingress control")
	}
	if c.ingress, err = cc.lowerBlock(pl.prog.Ingress.Body, nil); err != nil {
		return nil, err
	}
	if pl.prog.Egress != nil {
		c.hasEgr = true
		if c.egress, err = cc.lowerBlock(pl.prog.Egress.Body, nil); err != nil {
			return nil, err
		}
	}

	// Parser.
	if len(ast.ParserStates) > 0 {
		c.hasParser = true
		if err := cc.lowerParser(); err != nil {
			return nil, err
		}
	}

	// Deparser: calculated fields, header write-back, trailer.
	for _, cf := range ast.CalcFields {
		if cf.Update == "" {
			continue
		}
		hi, err := cc.hash(cf.Update)
		if err != nil {
			return nil, err
		}
		inst, ok := cc.instOf[cf.Field.Instance]
		if !ok {
			return nil, fmt.Errorf("sim: calculated field on unknown instance %q", cf.Field.Instance)
		}
		dst, err := cc.slot(cf.Field)
		if err != nil {
			return nil, err
		}
		c.calcs = append(c.calcs, cCalc{inst: inst, dst: dst, hash: hi})
	}
	for _, inst := range ast.Instances {
		if inst.Metadata {
			continue
		}
		fields, err := cc.instFields(inst)
		if err != nil {
			return nil, err
		}
		c.emits = append(c.emits, cEmit{inst: cc.instOf[inst.Name], fields: fields})
	}
	if pl.opts.Trailer != "" {
		inst := ast.Instance(pl.opts.Trailer)
		fields, err := cc.instFields(inst)
		if err != nil {
			return nil, err
		}
		ht := ast.HeaderType(inst.TypeName)
		c.trailer = &cEmit{inst: cc.instOf[inst.Name], fields: fields}
		c.trailerZero = make([]byte, (ht.Bits()+7)/8)
	}
	c.lower = cc
	return c, nil
}

// slot resolves a field reference to its slot.
func (cc *compiler) slot(ref p4.FieldRef) (int32, error) {
	s, ok := cc.slotOf[ir.Key(ref)]
	if !ok {
		return 0, fmt.Errorf("sim: unknown field %s", ir.Key(ref))
	}
	return s, nil
}

// instFields lists an instance's (slot, width) pairs in field order.
func (cc *compiler) instFields(inst *p4.Instance) ([]cPField, error) {
	ht := cc.pl.prog.AST.HeaderType(inst.TypeName)
	out := make([]cPField, 0, len(ht.Fields))
	for _, f := range ht.Fields {
		s, err := cc.slot(p4.FieldRef{Instance: inst.Name, Field: f.Name})
		if err != nil {
			return nil, err
		}
		out = append(out, cPField{slot: s, width: f.Width})
	}
	return out, nil
}

// expr lowers an arithmetic expression under a parameter binding.
func (cc *compiler) expr(e p4.Expr, bind map[string]cexpr) (cexpr, error) {
	switch v := e.(type) {
	case p4.IntLit:
		return constExpr(v.Value), nil
	case p4.SymRef:
		// Un-instantiated tunable reference: lower the default it
		// carries. Instantiated programs never contain SymRefs.
		return constExpr(v.Value), nil
	case p4.FieldRef:
		if v.Field == "" {
			if b, ok := bind[v.Instance]; ok {
				return b, nil
			}
			return cexpr{}, fmt.Errorf("sim: bare reference %q is not a value", v.Instance)
		}
		s, err := cc.slot(v)
		if err != nil {
			return cexpr{}, err
		}
		return slotExpr(s), nil
	case p4.ParamRef:
		if b, ok := bind[v.Name]; ok {
			return b, nil
		}
		return cexpr{}, fmt.Errorf("sim: unbound parameter %q", v.Name)
	}
	return cexpr{}, fmt.Errorf("sim: unknown expression %T", e)
}

// boolExpr lowers an if condition. Conditions have no parameter scope, so
// bare references and parameters are lowering errors (the interpreter
// fails the same way per packet).
func (cc *compiler) boolExpr(e p4.BoolExpr) (*cBool, error) {
	switch v := e.(type) {
	case *p4.ValidExpr:
		inst, ok := cc.instOf[v.Instance]
		if !ok {
			return nil, fmt.Errorf("sim: valid() on unknown instance %q", v.Instance)
		}
		return &cBool{kind: bValid, inst: inst}, nil
	case *p4.CompareExpr:
		l, err := cc.expr(v.Left, nil)
		if err != nil {
			return nil, err
		}
		r, err := cc.expr(v.Right, nil)
		if err != nil {
			return nil, err
		}
		var op uint8
		switch v.Op {
		case "==":
			op = cmpEq
		case "!=":
			op = cmpNe
		case "<":
			op = cmpLt
		case "<=":
			op = cmpLe
		case ">":
			op = cmpGt
		case ">=":
			op = cmpGe
		default:
			return nil, fmt.Errorf("sim: unknown comparison %q", v.Op)
		}
		return &cBool{kind: bCmp, op: op, l: l, r: r}, nil
	case *p4.BinaryBoolExpr:
		a, err := cc.boolExpr(v.Left)
		if err != nil {
			return nil, err
		}
		b, err := cc.boolExpr(v.Right)
		if err != nil {
			return nil, err
		}
		kind := uint8(bAnd)
		if v.Op == "or" {
			kind = bOr
		} else if v.Op != "and" {
			return nil, fmt.Errorf("sim: unknown boolean op %q", v.Op)
		}
		return &cBool{kind: kind, a: a, b: b}, nil
	case *p4.NotExpr:
		a, err := cc.boolExpr(v.X)
		if err != nil {
			return nil, err
		}
		return &cBool{kind: bNot, a: a}, nil
	}
	return nil, fmt.Errorf("sim: unknown boolean expression %T", e)
}

// lowerBlock flattens a control block into bytecode, appending to code.
func (cc *compiler) lowerBlock(b *p4.BlockStmt, code []cInstr) ([]cInstr, error) {
	if b == nil {
		return code, nil
	}
	var err error
	for _, stmt := range b.Stmts {
		switch v := stmt.(type) {
		case *p4.ApplyStmt:
			ti, ok := cc.tableOf[v.Table]
			if !ok {
				return nil, fmt.Errorf("sim: unknown table %q", v.Table)
			}
			code = append(code, cInstr{op: ciApply, tbl: ti})
			if v.Hit == nil && v.Miss == nil {
				continue
			}
			br := len(code)
			code = append(code, cInstr{op: ciBrMiss})
			if code, err = cc.lowerBlock(v.Hit, code); err != nil {
				return nil, err
			}
			if v.Miss != nil {
				jmp := len(code)
				code = append(code, cInstr{op: ciJump})
				code[br].tgt = int32(len(code))
				if code, err = cc.lowerBlock(v.Miss, code); err != nil {
					return nil, err
				}
				code[jmp].tgt = int32(len(code))
			} else {
				code[br].tgt = int32(len(code))
			}
		case *p4.IfStmt:
			cond, cerr := cc.boolExpr(v.Cond)
			if cerr != nil {
				return nil, cerr
			}
			br := len(code)
			code = append(code, cInstr{op: ciBrFalse, cond: cond})
			if code, err = cc.lowerBlock(v.Then, code); err != nil {
				return nil, err
			}
			if v.Else != nil {
				jmp := len(code)
				code = append(code, cInstr{op: ciJump})
				code[br].tgt = int32(len(code))
				if code, err = cc.lowerBlock(v.Else, code); err != nil {
					return nil, err
				}
				code[jmp].tgt = int32(len(code))
			} else {
				code[br].tgt = int32(len(code))
			}
		case *p4.BlockStmt:
			if code, err = cc.lowerBlock(v, code); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sim: unknown statement %T", stmt)
		}
	}
	return code, nil
}

// lowerTable lowers one table: its key layout, every installed rule, and
// the effective default action.
func (cc *compiler) lowerTable(t *p4.TableDecl) (cTable, error) {
	ct := cTable{name: t.Name}
	for _, r := range t.Reads {
		if r.Kind == p4.MatchValid {
			inst, ok := cc.instOf[r.Field.Instance]
			if !ok {
				return ct, fmt.Errorf("sim: valid match on unknown instance %q", r.Field.Instance)
			}
			ct.keys = append(ct.keys, cKey{valid: true, inst: inst})
			continue
		}
		s, err := cc.slot(r.Field)
		if err != nil {
			return ct, err
		}
		ct.keys = append(ct.keys, cKey{slot: s})
	}
	for _, r := range cc.pl.tableRules[t.Name] {
		cr, err := cc.lowerRule(t, &ct, r)
		if err != nil {
			return ct, err
		}
		ct.rules = append(ct.rules, cr)
	}
	// Effective default: runtime override beats the declared default.
	action := t.DefaultAction
	var argValues []uint64
	argExprs := t.DefaultArgs
	if d := cc.pl.defaults[t.Name]; d != nil {
		action, argValues, argExprs = d.Action, d.Args, nil
	}
	if action != "" {
		body, err := cc.lowerActionCall(action, argValues, argExprs)
		if err != nil {
			return ct, err
		}
		ct.hasDef = true
		ct.def = body
	}
	ct.defExec = Executed{Table: t.Name, Action: action, Hit: true}
	ct.missExec = Executed{Table: t.Name, Action: action, Hit: false}
	return ct, nil
}

// lowerRule lowers one installed rule against its table's key layout.
func (cc *compiler) lowerRule(t *p4.TableDecl, ct *cTable, r rt.Rule) (cRule, error) {
	if len(r.Matches) != len(ct.keys) {
		return cRule{}, fmt.Errorf("sim: rule on %s has %d matches for %d reads", t.Name, len(r.Matches), len(ct.keys))
	}
	cr := cRule{
		priority: r.Priority,
		exec:     Executed{Table: t.Name, Action: r.Action, Hit: true},
	}
	for i, m := range r.Matches {
		var cm cMatch
		switch m.Kind {
		case p4.MatchExact, p4.MatchValid:
			cm = cMatch{kind: mExact, value: m.Value}
		case p4.MatchLPM:
			// The interpreter's tie-break sums PrefixLen over LPM matches;
			// a zero prefix matches anything and contributes zero.
			cr.prefix += m.PrefixLen
			if m.PrefixLen == 0 {
				cm = cMatch{kind: mAny}
			} else {
				var w int
				if ct.keys[i].valid {
					w = 1
				} else {
					w = cc.widthOfSlot(ct.keys[i].slot, t, i)
				}
				shift := uint8(w - m.PrefixLen)
				cm = cMatch{kind: mLPM, shift: shift, value: m.Value >> shift}
			}
		case p4.MatchTernary:
			cm = cMatch{kind: mTernary, mask: m.Mask, value: m.Value & m.Mask}
		case p4.MatchRange:
			cm = cMatch{kind: mRange, value: m.Value, hi: m.RangeHi}
		default:
			return cRule{}, fmt.Errorf("sim: unknown match kind %q", m.Kind)
		}
		cr.matches = append(cr.matches, cm)
	}
	body, err := cc.lowerActionCall(r.Action, r.Args, nil)
	if err != nil {
		return cRule{}, err
	}
	cr.body = body
	return cr, nil
}

// widthOfSlot returns the declared width of the i-th read of table t.
func (cc *compiler) widthOfSlot(slot int32, t *p4.TableDecl, i int) int {
	return cc.pl.widths[ir.Key(t.Reads[i].Field)]
}

// lowerActionCall lowers an action invocation with a concrete argument
// source: constants from an installed rule, or expressions from a default
// declaration. Constant arguments fold into the ops; expression arguments
// get an oBind prologue into a scratch slot so the interpreter's
// bind-before-execute order is preserved.
func (cc *compiler) lowerActionCall(name string, argValues []uint64, argExprs []p4.Expr) (cBody, error) {
	decl := cc.pl.prog.AST.Action(name)
	if decl == nil {
		return cBody{}, fmt.Errorf("sim: unknown action %q", name)
	}
	body := cBody{actionName: name}
	bind := map[string]cexpr{}
	switch {
	case argValues != nil:
		if len(argValues) != len(decl.Params) {
			return cBody{}, fmt.Errorf("sim: action %s expects %d args, got %d", name, len(decl.Params), len(argValues))
		}
		for i, p := range decl.Params {
			bind[p] = constExpr(argValues[i])
		}
	case len(argExprs) > 0:
		if len(argExprs) != len(decl.Params) {
			return cBody{}, fmt.Errorf("sim: action %s expects %d args, got %d", name, len(decl.Params), len(argExprs))
		}
		for i, p := range decl.Params {
			e, err := cc.expr(argExprs[i], nil)
			if err != nil {
				return cBody{}, err
			}
			if e.isConst {
				bind[p] = e
				continue
			}
			scratch := cc.addScratchSlot()
			body.ops = append(body.ops, cOp{kind: oBind, dst: scratch, a: e})
			bind[p] = slotExpr(scratch)
		}
	default:
		if len(decl.Params) != 0 {
			return cBody{}, fmt.Errorf("sim: action %s requires %d args", name, len(decl.Params))
		}
	}
	for _, call := range decl.Body {
		op, skip, err := cc.lowerPrimitive(call, bind)
		if err != nil {
			return cBody{}, err
		}
		if !skip {
			body.ops = append(body.ops, op)
		}
	}
	return body, nil
}

// addScratchSlot allocates an unmasked slot outside any header, used for
// oBind targets.
func (cc *compiler) addScratchSlot() int32 {
	s := int32(cc.c.nSlots)
	cc.c.nSlots++
	cc.c.mask = append(cc.c.mask, ^uint64(0))
	return s
}

// lowerPrimitive lowers one primitive call. skip is true for no-ops.
func (cc *compiler) lowerPrimitive(call *p4.PrimitiveCall, bind map[string]cexpr) (cOp, bool, error) {
	dst := func(i int) (int32, error) {
		ref, ok := call.Args[i].(p4.FieldRef)
		if !ok || ref.Field == "" {
			return 0, fmt.Errorf("sim: %s: argument %d is not a field", call.Name, i)
		}
		return cc.slot(ref)
	}
	arg := func(i int) (cexpr, error) { return cc.expr(call.Args[i], bind) }
	instArg := func(i int) (string, error) {
		ref, ok := call.Args[i].(p4.FieldRef)
		if !ok {
			return "", fmt.Errorf("sim: %s: argument %d is not a reference", call.Name, i)
		}
		return ref.Instance, nil
	}
	switch call.Name {
	case p4.PrimModifyField, p4.PrimAddToField, p4.PrimSubFromField:
		d, err := dst(0)
		if err != nil {
			return cOp{}, false, err
		}
		a, err := arg(1)
		if err != nil {
			return cOp{}, false, err
		}
		kind := uint8(oSet)
		if call.Name == p4.PrimAddToField {
			kind = oAdd
		} else if call.Name == p4.PrimSubFromField {
			kind = oSub
		}
		return cOp{kind: kind, dst: d, a: a}, false, nil
	case p4.PrimBitAnd, p4.PrimBitOr, p4.PrimBitXor, p4.PrimMin, p4.PrimMax:
		d, err := dst(0)
		if err != nil {
			return cOp{}, false, err
		}
		a, err := arg(1)
		if err != nil {
			return cOp{}, false, err
		}
		b, err := arg(2)
		if err != nil {
			return cOp{}, false, err
		}
		var kind uint8
		switch call.Name {
		case p4.PrimBitAnd:
			kind = oAnd
		case p4.PrimBitOr:
			kind = oOr
		case p4.PrimBitXor:
			kind = oXor
		case p4.PrimMin:
			kind = oMin
		case p4.PrimMax:
			kind = oMax
		}
		return cOp{kind: kind, dst: d, a: a, b: b}, false, nil
	case p4.PrimDrop:
		return cOp{kind: oDrop}, false, nil
	case p4.PrimNoOp:
		return cOp{}, true, nil
	case p4.PrimRegisterRead:
		d, err := dst(0)
		if err != nil {
			return cOp{}, false, err
		}
		regName, err := instArg(1)
		if err != nil {
			return cOp{}, false, err
		}
		ri, ok := cc.regOf[regName]
		if !ok {
			return cOp{}, false, fmt.Errorf("sim: register_read: unknown register %q", regName)
		}
		idx, err := arg(2)
		if err != nil {
			return cOp{}, false, err
		}
		return cOp{kind: oRegRead, dst: d, res: ri, a: idx}, false, nil
	case p4.PrimRegisterWrite:
		regName, err := instArg(0)
		if err != nil {
			return cOp{}, false, err
		}
		ri, ok := cc.regOf[regName]
		if !ok {
			return cOp{}, false, fmt.Errorf("sim: register_write: unknown register %q", regName)
		}
		idx, err := arg(1)
		if err != nil {
			return cOp{}, false, err
		}
		v, err := arg(2)
		if err != nil {
			return cOp{}, false, err
		}
		return cOp{kind: oRegWrite, res: ri, a: idx, b: v, mask: cc.c.regs[ri].mask}, false, nil
	case p4.PrimCount:
		ctrName, err := instArg(0)
		if err != nil {
			return cOp{}, false, err
		}
		ci, ok := cc.ctrOf[ctrName]
		if !ok {
			return cOp{}, false, fmt.Errorf("sim: count: unknown counter %q", ctrName)
		}
		idx, err := arg(1)
		if err != nil {
			return cOp{}, false, err
		}
		return cOp{kind: oCount, res: ci, a: idx}, false, nil
	case p4.PrimHashOffset:
		d, err := dst(0)
		if err != nil {
			return cOp{}, false, err
		}
		base, err := arg(1)
		if err != nil {
			return cOp{}, false, err
		}
		calcName, err := instArg(2)
		if err != nil {
			return cOp{}, false, err
		}
		hi, err := cc.hash(calcName)
		if err != nil {
			return cOp{}, false, err
		}
		size, err := arg(3)
		if err != nil {
			return cOp{}, false, err
		}
		return cOp{kind: oHash, dst: d, a: base, b: size, res: hi}, false, nil
	}
	return cOp{}, false, fmt.Errorf("sim: unknown primitive %q", call.Name)
}

// hash lowers (and memoizes) a field_list_calculation.
func (cc *compiler) hash(calcName string) (int32, error) {
	if hi, ok := cc.hashOf[calcName]; ok {
		return hi, nil
	}
	calc := cc.pl.prog.AST.Calculation(calcName)
	if calc == nil {
		return 0, fmt.Errorf("sim: unknown calculation %q", calcName)
	}
	alg, err := hashes.FromName(calc.Algorithm)
	if err != nil {
		return 0, err
	}
	fl := cc.pl.prog.AST.FieldList(calc.Input)
	if fl == nil {
		return 0, fmt.Errorf("sim: unknown field list %q", calc.Input)
	}
	h := chash{alg: alg, outWidth: calc.OutputWidth}
	for _, f := range fl.Fields {
		s, err := cc.slot(f)
		if err != nil {
			return 0, err
		}
		w := cc.pl.widths[ir.Key(f)]
		h.fields = append(h.fields, cPField{slot: s, width: w})
		h.widths = append(h.widths, w)
	}
	hi := int32(len(cc.c.hashes))
	cc.c.hashes = append(cc.c.hashes, h)
	cc.hashOf[calcName] = hi
	return hi, nil
}

// lowerParser lowers the parser graph with resolved state indexes.
func (cc *compiler) lowerParser() error {
	ast := cc.pl.prog.AST
	idxOf := map[string]int32{}
	for i, ps := range ast.ParserStates {
		if _, dup := idxOf[ps.Name]; dup {
			return fmt.Errorf("sim: duplicate parser state %q", ps.Name)
		}
		idxOf[ps.Name] = int32(i)
	}
	start, ok := idxOf[p4.StartState]
	if !ok {
		return fmt.Errorf("sim: parser state %q not found", p4.StartState)
	}
	cc.c.start = start
	resolve := func(name string) (int32, error) {
		if name == p4.IngressControl {
			return nextIngress, nil
		}
		i, ok := idxOf[name]
		if !ok {
			return 0, fmt.Errorf("sim: parser state %q not found", name)
		}
		return i, nil
	}
	for _, ps := range ast.ParserStates {
		var cs cParserState
		for _, stmt := range ps.Statements {
			switch v := stmt.(type) {
			case *p4.ExtractStmt:
				inst := ast.Instance(v.Instance)
				if inst == nil {
					return fmt.Errorf("sim: extract of unknown instance %q", v.Instance)
				}
				fields, err := cc.instFields(inst)
				if err != nil {
					return err
				}
				ht := ast.HeaderType(inst.TypeName)
				cs.ops = append(cs.ops, cParserOp{
					extract: true,
					inst:    cc.instOf[inst.Name],
					bits:    ht.Bits(),
					fields:  fields,
				})
			case *p4.SetMetadataStmt:
				val, err := cc.expr(v.Value, nil)
				if err != nil {
					return err
				}
				d, err := cc.slot(v.Dst)
				if err != nil {
					return err
				}
				cs.ops = append(cs.ops, cParserOp{dst: d, val: val})
			default:
				return fmt.Errorf("sim: unknown parser statement %T", stmt)
			}
		}
		switch ret := ps.Return.(type) {
		case *p4.ReturnState:
			next, err := resolve(ret.State)
			if err != nil {
				return err
			}
			cs.next = next
		case *p4.ReturnSelect:
			cs.isSelect = true
			for _, on := range ret.On {
				ref, ok := on.(p4.FieldRef)
				if !ok {
					return fmt.Errorf("sim: select operand must be a field")
				}
				s, err := cc.slot(ref)
				if err != nil {
					return err
				}
				cs.selOn = append(cs.selOn, cPField{slot: s, width: cc.pl.widths[ir.Key(ref)]})
			}
			cs.selDefault = nextStop
			for _, sc := range ret.Cases {
				next, err := resolve(sc.State)
				if err != nil {
					return err
				}
				if sc.IsDefault {
					if cs.selDefault == nextStop {
						cs.selDefault = next
					}
					continue
				}
				cs.selCases = append(cs.selCases, cSelCase{
					hasMask: sc.HasMask, value: sc.Value, mask: sc.Mask, next: next,
				})
			}
		default:
			return fmt.Errorf("sim: parser state %q has no return", ps.Name)
		}
		cc.c.parser = append(cc.c.parser, cs)
	}
	return nil
}
