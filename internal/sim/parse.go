package sim

import (
	"fmt"

	"p2go/internal/ir"
	"p2go/internal/p4"
)

// maxParserStates bounds parser execution to catch cyclic parser graphs.
const maxParserStates = 64

// runParser executes the parser graph on the packet. Truncated packets end
// parsing early (bmv2 semantics: headers parsed so far stay valid and the
// pipeline still runs).
func (s *Switch) runParser(st *state, data []byte) error {
	stateName := p4.StartState
	bitPos := 0
	totalBits := len(data) * 8
	for steps := 0; ; steps++ {
		if steps > maxParserStates {
			return fmt.Errorf("sim: parser exceeded %d states (cycle?)", maxParserStates)
		}
		ps := s.prog.AST.ParserState(stateName)
		if ps == nil {
			return fmt.Errorf("sim: parser state %q not found", stateName)
		}
		truncated := false
		for _, stmt := range ps.Statements {
			switch v := stmt.(type) {
			case *p4.ExtractStmt:
				inst := s.prog.AST.Instance(v.Instance)
				ht := s.prog.AST.HeaderType(inst.TypeName)
				if bitPos+ht.Bits() > totalBits {
					truncated = true
					break
				}
				st.extents[inst.Name] = headerExtent{bitOffset: bitPos}
				for _, f := range ht.Fields {
					val := readBits(data, bitPos, f.Width)
					st.fields[ir.FieldKey(inst.Name+"."+f.Name)] = val
					bitPos += f.Width
				}
				st.valid[inst.Name] = true
			case *p4.SetMetadataStmt:
				val, err := s.evalExpr(st, v.Value, nil)
				if err != nil {
					return err
				}
				s.setField(st, ir.Key(v.Dst), val)
			}
		}
		if truncated {
			return nil
		}
		next := ""
		switch ret := ps.Return.(type) {
		case *p4.ReturnState:
			next = ret.State
		case *p4.ReturnSelect:
			key := uint64(0)
			keyWidth := 0
			for _, on := range ret.On {
				ref, ok := on.(p4.FieldRef)
				if !ok {
					return fmt.Errorf("sim: select operand must be a field")
				}
				w := s.widths[ir.Key(ref)]
				key = key<<uint(w) | st.fields[ir.Key(ref)]
				keyWidth += w
			}
			_ = keyWidth
			next = selectCase(ret.Cases, key)
			if next == "" {
				// No default and no match: parsing stops, pipeline runs.
				return nil
			}
		}
		if next == p4.IngressControl {
			return nil
		}
		stateName = next
	}
}

// selectCase picks the first matching arm, falling back to default.
func selectCase(cases []*p4.SelectCase, key uint64) string {
	def := ""
	for _, c := range cases {
		if c.IsDefault {
			if def == "" {
				def = c.State
			}
			continue
		}
		if c.HasMask {
			if key&c.Mask == c.Value&c.Mask {
				return c.State
			}
		} else if key == c.Value {
			return c.State
		}
	}
	return def
}

// readBits extracts width bits starting at bit offset (big-endian bit
// order, as on the wire).
func readBits(data []byte, bitOffset, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		bit := bitOffset + i
		byteIdx := bit / 8
		shift := uint(7 - bit%8)
		v = v<<1 | uint64(data[byteIdx]>>shift&1)
	}
	return v
}

// writeBits stores width bits of v at bit offset.
func writeBits(data []byte, bitOffset, width int, v uint64) {
	for i := 0; i < width; i++ {
		bit := bitOffset + i
		byteIdx := bit / 8
		if byteIdx >= len(data) {
			return
		}
		shift := uint(7 - bit%8)
		b := byte(v >> uint(width-1-i) & 1)
		data[byteIdx] = data[byteIdx]&^(1<<shift) | b<<shift
	}
}
