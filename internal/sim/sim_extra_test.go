package sim

import (
	"testing"
	"testing/quick"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
)

// TestBitsRoundTrip: writeBits(readBits(x)) is the identity for arbitrary
// offsets and widths.
func TestBitsRoundTrip(t *testing.T) {
	f := func(data []byte, off8, width8 uint8, v uint64) bool {
		if len(data) == 0 {
			return true
		}
		width := int(width8)%64 + 1
		maxOff := len(data)*8 - width
		if maxOff < 0 {
			return true
		}
		off := int(off8) % (maxOff + 1)
		masked := v
		if width < 64 {
			masked &= 1<<uint(width) - 1
		}
		writeBits(data, off, width, masked)
		return readBits(data, off, width) == masked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestWriteBitsPreservesNeighbors: writing a field leaves surrounding bits
// untouched.
func TestWriteBitsPreservesNeighbors(t *testing.T) {
	data := []byte{0xFF, 0xFF, 0xFF}
	writeBits(data, 10, 4, 0) // clear bits 10..13
	if data[0] != 0xFF {
		t.Errorf("byte 0 = %#x, want 0xFF", data[0])
	}
	// Byte 1: bits 8,9 set; 10-13 cleared; 14,15 set -> 1100_0011.
	if data[1] != 0xC3 {
		t.Errorf("byte 1 = %#x, want 0xC3", data[1])
	}
	if data[2] != 0xFF {
		t.Errorf("byte 2 = %#x, want 0xFF", data[2])
	}
}

func buildSwitch(t *testing.T, src string, rules string) *Switch {
	t.Helper()
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	var cfg *rt.Config
	if rules != "" {
		cfg, err = rt.Parse(rules)
		if err != nil {
			t.Fatal(err)
		}
	}
	sw, err := New(prog, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestSelectWithMask: masked select arms match on the masked bits.
func TestSelectWithMask(t *testing.T) {
	src := `
header_type h_t { fields { tag : 8; val : 8; } }
header_type m_t { fields { x : 8; } }
header h_t h;
metadata m_t m;
parser start {
    extract(h);
    return select(h.tag) {
        0x40 &&& 0xC0 : mark_a;
        default : ingress;
    }
}
parser mark_a {
    set_metadata(m.x, 1);
    return ingress;
}
action keep() { modify_field(standard_metadata.egress_spec, m.x); }
table t { actions { keep; } default_action : keep; }
control ingress { apply(t); }
`
	sw := buildSwitch(t, src, "")
	// tag 0x55: high two bits 01 -> matches 0x40 &&& 0xC0.
	out, err := sw.Process(Input{Port: 1, Data: []byte{0x55, 0x00}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Port != 1 {
		t.Errorf("masked select missed: port = %d, want 1", out.Port)
	}
	// tag 0x85: high bits 10 -> default.
	out2, err := sw.Process(Input{Port: 1, Data: []byte{0x85, 0x00}})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Port != 0 {
		t.Errorf("masked select matched wrongly: port = %d, want 0", out2.Port)
	}
}

// TestSelectMultiOperand: select over two concatenated fields.
func TestSelectMultiOperand(t *testing.T) {
	src := `
header_type h_t { fields { a : 8; b : 8; } }
header_type m_t { fields { hit : 8; } }
header h_t h;
metadata m_t m;
parser start {
    extract(h);
    return select(h.a, h.b) {
        0x1234 : yes;
        default : ingress;
    }
}
parser yes {
    set_metadata(m.hit, 1);
    return ingress;
}
action out() { modify_field(standard_metadata.egress_spec, m.hit); }
table t { actions { out; } default_action : out; }
control ingress { apply(t); }
`
	sw := buildSwitch(t, src, "")
	out, _ := sw.Process(Input{Port: 1, Data: []byte{0x12, 0x34}})
	if out.Port != 1 {
		t.Errorf("concatenated select missed: port = %d", out.Port)
	}
	out2, _ := sw.Process(Input{Port: 1, Data: []byte{0x34, 0x12}})
	if out2.Port != 0 {
		t.Errorf("concatenated select order wrong: port = %d", out2.Port)
	}
}

// TestRegisterOutOfRange: an out-of-bounds register access is a hard error
// (the program's hash modulus is wrong).
func TestRegisterOutOfRange(t *testing.T) {
	src := `
header_type m_t { fields { v : 32; } }
metadata m_t m;
register r { width : 32; instance_count : 4; }
action bad() { register_write(r, 100, 1); }
table t { actions { bad; } default_action : bad; }
control ingress { apply(t); }
`
	sw := buildSwitch(t, src, "")
	if _, err := sw.Process(Input{Port: 1, Data: []byte{0}}); err == nil {
		t.Error("expected out-of-range register error")
	}
}

// TestArithmeticPrimitives: min, max, bit ops, add/sub with width wrap.
func TestArithmeticPrimitives(t *testing.T) {
	src := `
header_type m_t { fields { a : 8; b : 8; mn : 8; mx : 8; o : 8; x : 8; n : 8; } }
metadata m_t m;
action compute() {
    modify_field(m.a, 200);
    modify_field(m.b, 100);
    min(m.mn, m.a, m.b);
    max(m.mx, m.a, m.b);
    bit_or(m.o, m.a, m.b);
    bit_xor(m.x, m.a, m.b);
    bit_and(m.n, m.a, m.b);
    add_to_field(m.a, 100);
    subtract_from_field(m.b, 150);
    modify_field(standard_metadata.egress_spec, m.mn);
}
table t { actions { compute; } default_action : compute; }
control ingress { apply(t); }
`
	sw := buildSwitch(t, src, "")
	out, err := sw.Process(Input{Port: 1, Data: []byte{0}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Port != 100 {
		t.Errorf("min result = %d, want 100", out.Port)
	}
	// 200 + 100 wraps to 44 in 8 bits; 100 - 150 wraps to 206. Those are
	// internal fields; just ensure no error and min was correct.
}

// TestForwardPortSurvivesRedirect: a CPU redirect preserves the earlier
// forwarding decision in ForwardPort.
func TestForwardPortSurvivesRedirect(t *testing.T) {
	src := `
header_type m_t { fields { v : 8; } }
metadata m_t m;
action fwd() { modify_field(standard_metadata.egress_spec, 7); }
action to_cpu() { modify_field(standard_metadata.egress_spec, 255); }
table t1 { actions { fwd; } default_action : fwd; }
table t2 { actions { to_cpu; } default_action : to_cpu; }
control ingress {
    apply(t1);
    apply(t2);
}
`
	sw := buildSwitch(t, src, "")
	out, err := sw.Process(Input{Port: 1, Data: []byte{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.ToCPU {
		t.Fatal("expected CPU redirect")
	}
	if out.ForwardPort != 7 {
		t.Errorf("ForwardPort = %d, want 7", out.ForwardPort)
	}
}

// TestDefaultActionWithArgs: default_action arguments are evaluated.
func TestDefaultActionWithArgs(t *testing.T) {
	src := `
header_type m_t { fields { v : 8; } }
metadata m_t m;
action setp(p) { modify_field(standard_metadata.egress_spec, p); }
table t {
    reads { m.v : exact; }
    actions { setp; }
    size : 4;
    default_action : setp(42);
}
control ingress { apply(t); }
`
	sw := buildSwitch(t, src, "")
	out, err := sw.Process(Input{Port: 1, Data: []byte{0}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Port != 42 {
		t.Errorf("default action arg: port = %d, want 42", out.Port)
	}
}

// TestValidMatchKind: a table matching on header validity.
func TestValidMatchKind(t *testing.T) {
	src := `
header_type h_t { fields { x : 8; } }
header h_t h;
parser start {
    return select(standard_metadata.ingress_port) {
        1 : parse_h;
        default : ingress;
    }
}
parser parse_h { extract(h); return ingress; }
action a1() { modify_field(standard_metadata.egress_spec, 11); }
action a2() { modify_field(standard_metadata.egress_spec, 22); }
table t {
    reads { h : valid; }
    actions { a1; a2; }
    size : 2;
}
control ingress { apply(t); }
`
	sw := buildSwitch(t, src, "table_add t a1 1\ntable_add t a2 0\n")
	out, _ := sw.Process(Input{Port: 1, Data: []byte{9}})
	if out.Port != 11 {
		t.Errorf("valid=1 port = %d, want 11", out.Port)
	}
	out2, _ := sw.Process(Input{Port: 2, Data: []byte{9}})
	if out2.Port != 22 {
		t.Errorf("valid=0 port = %d, want 22", out2.Port)
	}
}

// TestSelectOnMetadataFromParser: set_metadata feeding a select.
func TestParserSetMetadata(t *testing.T) {
	src := `
header_type h_t { fields { x : 8; } }
header_type m_t { fields { tag : 8; } }
header h_t h;
metadata m_t m;
parser start {
    extract(h);
    set_metadata(m.tag, 5);
    return ingress;
}
action use() { modify_field(standard_metadata.egress_spec, m.tag); }
table t { actions { use; } default_action : use; }
control ingress { apply(t); }
`
	sw := buildSwitch(t, src, "")
	out, _ := sw.Process(Input{Port: 1, Data: []byte{1}})
	if out.Port != 5 {
		t.Errorf("set_metadata: port = %d, want 5", out.Port)
	}
}

// TestRuntimeDefaultOverride: table_set_default changes the miss behavior
// without recompiling the program.
func TestRuntimeDefaultOverride(t *testing.T) {
	src := `
header_type m_t { fields { v : 8; } }
metadata m_t m;
action setp(p) { modify_field(standard_metadata.egress_spec, p); }
action dropper() { drop(); }
table t {
    reads { m.v : exact; }
    actions { setp; dropper; }
    size : 4;
    default_action : dropper;
}
control ingress { apply(t); }
`
	// Declared default: miss drops.
	sw := buildSwitch(t, src, "")
	out, _ := sw.Process(Input{Port: 1, Data: []byte{0}})
	if !out.Dropped {
		t.Fatal("declared default should drop")
	}
	// Runtime override: miss forwards to port 9.
	sw2 := buildSwitch(t, src, "table_set_default t setp 9")
	out2, _ := sw2.Process(Input{Port: 1, Data: []byte{0}})
	if out2.Dropped || out2.Port != 9 {
		t.Fatalf("override default: dropped=%v port=%d, want forward to 9", out2.Dropped, out2.Port)
	}
}
