package sim

import (
	"testing"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/packet"
	"p2go/internal/programs"
)

func quickstartSwitch(t *testing.T) *Switch {
	t.Helper()
	ast := p4.MustParse(programs.Quickstart)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, programs.QuickstartConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestCounterIncrements: the quickstart router's route_stats counter counts
// packets and bytes per egress port.
func TestCounterIncrements(t *testing.T) {
	sw := quickstartSwitch(t)
	mk := func(dst uint32) []byte {
		return packet.Serialize(
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{Protocol: packet.ProtoTCP, Src: packet.IP(10, 1, 1, 1), Dst: dst, TTL: 9},
			&packet.TCP{SrcPort: 1, DstPort: 2},
		)
	}
	for i := 0; i < 3; i++ {
		if _, err := sw.Process(Input{Port: 1, Data: mk(packet.IP(10, 0, 0, 5))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sw.Process(Input{Port: 1, Data: mk(packet.IP(192, 168, 1, 1))}); err != nil {
		t.Fatal(err)
	}
	stats := sw.Counter("route_stats")
	if stats == nil {
		t.Fatal("counter missing")
	}
	// Port 1 = the 10/8 route; port 2 = 192.168/16.
	if stats[1].Packets != 3 {
		t.Errorf("route_stats[1].Packets = %d, want 3", stats[1].Packets)
	}
	if stats[2].Packets != 1 {
		t.Errorf("route_stats[2].Packets = %d, want 1", stats[2].Packets)
	}
	pktLen := uint64(len(mk(packet.IP(10, 0, 0, 5))))
	if stats[1].Bytes != 3*pktLen {
		t.Errorf("route_stats[1].Bytes = %d, want %d", stats[1].Bytes, 3*pktLen)
	}
	// Unrouted packets (default no_route) do not count.
	if _, err := sw.Process(Input{Port: 1, Data: mk(packet.IP(8, 8, 8, 8))}); err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, c := range sw.Counter("route_stats") {
		total += c.Packets
	}
	if total != 4 {
		t.Errorf("total counted = %d, want 4", total)
	}
	// Reset clears counters too.
	sw.Reset()
	if sw.Counter("route_stats")[1].Packets != 0 {
		t.Error("Reset did not clear counters")
	}
}

// TestCounterOutOfRange: a count() past the array is a hard error.
func TestCounterOutOfRange(t *testing.T) {
	src := `
counter c { type : packets; instance_count : 2; }
action a() { count(c, 9); }
table t { actions { a; } default_action : a; }
control ingress { apply(t); }
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Process(Input{Port: 1, Data: []byte{0}}); err == nil {
		t.Error("expected out-of-range counter error")
	}
}

// TestCounterSharedByTwoTablesRejected mirrors the register constraint.
func TestCounterSharedByTwoTablesRejected(t *testing.T) {
	src := `
counter c { type : packets; instance_count : 4; }
action a1() { count(c, 0); }
action a2() { count(c, 1); }
table t1 { actions { a1; } default_action : a1; }
table t2 { actions { a2; } default_action : a2; }
control ingress { apply(t1); apply(t2); }
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Build(ast); err == nil {
		t.Error("counter shared across tables should be rejected")
	}
}

// TestCounterUnknownRejected: count() on an undeclared counter fails check.
func TestCounterUnknownRejected(t *testing.T) {
	src := `
action a() { count(ghost, 0); }
control ingress { }
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err == nil {
		t.Error("count on unknown counter should fail check")
	}
}
