package p4

import (
	"strings"
	"testing"
)

const miniProgram = `
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type meta_t {
    fields {
        idx : 16;
        count : 32;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
metadata meta_t meta;

register counts {
    width : 32;
    instance_count : 1024;
}

field_list flow_fl {
    ipv4.srcAddr;
    ipv4.dstAddr;
}
field_list_calculation flow_hash {
    input {
        flow_fl;
    }
    algorithm : crc16;
    output_width : 16;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return ingress;
}

action set_port(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action do_drop() {
    drop();
}
action count_flow() {
    modify_field_with_hash_based_offset(meta.idx, 0, flow_hash, 1024);
    register_read(meta.count, counts, meta.idx);
    add_to_field(meta.count, 1);
    register_write(counts, meta.idx, meta.count);
}

table forward {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_port;
        do_drop;
    }
    size : 1024;
    default_action : do_drop;
}
table counter_tbl {
    actions {
        count_flow;
    }
    default_action : count_flow;
}

control ingress {
    if (valid(ipv4)) {
        apply(forward) {
            hit {
                apply(counter_tbl);
            }
        }
    }
}
`

func mustParseAndCheck(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return prog
}

func TestParseMiniProgram(t *testing.T) {
	prog := mustParseAndCheck(t, miniProgram)
	if got := len(prog.Tables); got != 2 {
		t.Fatalf("tables = %d, want 2", got)
	}
	if got := len(prog.Actions); got != 3 {
		t.Fatalf("actions = %d, want 3", got)
	}
	fwd := prog.Table("forward")
	if fwd == nil {
		t.Fatal("table forward not found")
	}
	if fwd.Size != 1024 {
		t.Errorf("forward size = %d, want 1024", fwd.Size)
	}
	if fwd.Reads[0].Kind != MatchLPM {
		t.Errorf("forward read kind = %q, want lpm", fwd.Reads[0].Kind)
	}
	if fwd.DefaultAction != "do_drop" {
		t.Errorf("forward default = %q, want do_drop", fwd.DefaultAction)
	}
	ipv4 := prog.HeaderType("ipv4_t")
	if ipv4 == nil || ipv4.Bits() != 160 {
		t.Errorf("ipv4_t bits = %v, want 160", ipv4)
	}
}

func TestParseHitMissBlocks(t *testing.T) {
	prog := mustParseAndCheck(t, miniProgram)
	ing := prog.Control("ingress")
	ifs, ok := ing.Body.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("first stmt is %T, want *IfStmt", ing.Body.Stmts[0])
	}
	ap, ok := ifs.Then.Stmts[0].(*ApplyStmt)
	if !ok {
		t.Fatalf("then stmt is %T, want *ApplyStmt", ifs.Then.Stmts[0])
	}
	if ap.Hit == nil || ap.Miss != nil {
		t.Fatalf("apply hit=%v miss=%v, want hit set, miss nil", ap.Hit, ap.Miss)
	}
	inner, ok := ap.Hit.Stmts[0].(*ApplyStmt)
	if !ok || inner.Table != "counter_tbl" {
		t.Fatalf("hit block = %#v, want apply(counter_tbl)", ap.Hit.Stmts[0])
	}
}

func TestPrintRoundTrip(t *testing.T) {
	prog := mustParseAndCheck(t, miniProgram)
	printed := Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse printed source: %v\nsource:\n%s", err, printed)
	}
	if err := Check(prog2); err != nil {
		t.Fatalf("recheck printed source: %v", err)
	}
	printed2 := Print(prog2)
	if printed != printed2 {
		t.Errorf("print is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
	if len(prog2.Tables) != len(prog.Tables) || len(prog2.Actions) != len(prog.Actions) {
		t.Errorf("round trip lost declarations")
	}
}

func TestCloneIsDeep(t *testing.T) {
	prog := mustParseAndCheck(t, miniProgram)
	cp := Clone(prog)
	cp.Table("forward").Size = 7
	if prog.Table("forward").Size != 1024 {
		t.Error("mutating clone affected original table size")
	}
	ing := cp.Control("ingress")
	ing.Body.Stmts = nil
	if len(prog.Control("ingress").Body.Stmts) == 0 {
		t.Error("mutating clone affected original control body")
	}
	if Print(Clone(prog)) != Print(prog) {
		t.Error("clone does not print identically to original")
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := Lex("table t { size : 0x1F; } // comment\n/* block */ 8w255 &&&")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var kinds []TokenKind
	var ints []uint64
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		if tok.Kind == TokInt {
			ints = append(ints, tok.Int)
		}
	}
	wantInts := []uint64{31, 255}
	if len(ints) != 2 || ints[0] != wantInts[0] || ints[1] != wantInts[1] {
		t.Errorf("ints = %v, want %v", ints, wantInts)
	}
	if kinds[len(kinds)-2] != TokMask {
		t.Errorf("expected &&& token before EOF, got %v", kinds)
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{"=", "!", "&", "/* unterminated", "$", "99999999999999999999999999"}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown decl":        "frobnicate x;",
		"bad field width":     "header_type h { fields { f : 65; } }",
		"missing actions":     "table t { size : 4; }",
		"bad match kind":      "header_type h { fields { f : 8; } } header h hi; action a() { no_op(); } table t { reads { hi.f : fuzzy; } actions { a; } }",
		"duplicate decl":      "header_type h { fields { f : 8; } } header_type h { fields { g : 8; } }",
		"apply without paren": "control ingress { apply t; }",
		"register no width":   "register r { instance_count : 4; }",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse(%q) expected error", name, src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		"unknown table in apply": `
action a() { no_op(); }
control ingress { apply(ghost); }`,
		"table applied twice": `
action a() { no_op(); }
table t { actions { a; } }
control ingress { apply(t); apply(t); }`,
		"unknown action in table": `
table t { actions { ghost; } }
control ingress { apply(t); }`,
		"default not in actions": `
action a() { no_op(); }
action b() { no_op(); }
table t { actions { a; } default_action : b; }
control ingress { apply(t); }`,
		"unknown field in reads": `
header_type h_t { fields { f : 8; } }
header h_t h;
action a() { no_op(); }
table t { reads { h.g : exact; } actions { a; } }
control ingress { apply(t); }`,
		"no ingress": `
action a() { no_op(); }
table t { actions { a; } }
control egress { apply(t); }`,
		"unknown primitive": `
action a() { launch_missiles(); }
control ingress { }`,
		"register_read non register": `
header_type m_t { fields { f : 8; } }
metadata m_t m;
action a() { register_read(m.f, m, 0); }
control ingress { }`,
		"valid on unknown instance": `
action a() { no_op(); }
table t { actions { a; } }
control ingress { if (valid(ghost)) { apply(t); } }`,
		"extract metadata": `
header_type m_t { fields { f : 8; } }
metadata m_t m;
parser start { extract(m); return ingress; }
control ingress { }`,
		"select without default": `
header_type e_t { fields { t : 16; } }
header e_t e;
parser start { extract(e); return select(e.t) { 0x800 : ingress; } }
control ingress { }`,
	}
	for name, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("%s: unexpected parse error: %v", name, err)
			continue
		}
		if err := Check(prog); err == nil {
			t.Errorf("%s: Check expected error", name)
		}
	}
}

func TestEnsureBuiltinsIdempotent(t *testing.T) {
	prog := mustParseAndCheck(t, miniProgram)
	n := len(prog.Decls)
	EnsureBuiltins(prog)
	EnsureBuiltins(prog)
	if len(prog.Decls) != n {
		t.Errorf("EnsureBuiltins is not idempotent: %d -> %d decls", n, len(prog.Decls))
	}
	if prog.Instance("standard_metadata") == nil {
		t.Error("standard_metadata instance missing")
	}
}

func TestWalkStmtsVisitsNested(t *testing.T) {
	prog := mustParseAndCheck(t, miniProgram)
	tables := TablesInBlock(prog.Control("ingress").Body)
	want := []string{"forward", "counter_tbl"}
	if strings.Join(tables, ",") != strings.Join(want, ",") {
		t.Errorf("TablesInBlock = %v, want %v", tables, want)
	}
}

func TestBoolExprParsing(t *testing.T) {
	src := `
header_type m_t { fields { a : 8; b : 8; } }
metadata m_t m;
action x() { no_op(); }
table t1 { actions { x; } }
table t2 { actions { x; } }
control ingress {
    if ((m.a == 1) and (not (m.b < 2)) or valid(m)) {
        apply(t1);
    } else if (m.a != m.b) {
        apply(t2);
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ifs := prog.Control("ingress").Body.Stmts[0].(*IfStmt)
	or, ok := ifs.Cond.(*BinaryBoolExpr)
	if !ok || or.Op != "or" {
		t.Fatalf("top-level cond = %#v, want or-expression", ifs.Cond)
	}
	and, ok := or.Left.(*BinaryBoolExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("or.Left = %#v, want and-expression", or.Left)
	}
	if _, ok := and.Right.(*NotExpr); !ok {
		t.Fatalf("and.Right = %#v, want not-expression", and.Right)
	}
	if ifs.Else == nil {
		t.Fatal("else branch missing")
	}
}
