package p4

import (
	"strings"
	"testing"
)

const tunableSrc = `@tunable(cells, 1024, 65536, 16384);
@tunable(threshold, 1, 100, 25);
header_type meta_t {
    fields {
        idx : 32;
        count : 32;
    }
}
metadata meta_t md;
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header ethernet_t ethernet;
register counts {
    width : 32;
    instance_count : cells;
}
field_list flow {
    ethernet.srcAddr;
}
field_list_calculation flow_hash {
    input {
        flow;
    }
    algorithm : crc32;
    output_width : 32;
}
parser start {
    extract(ethernet);
    return ingress;
}
action tally() {
    modify_field_with_hash_based_offset(md.idx, 0, flow_hash, cells);
    register_read(md.count, counts, md.idx);
    add_to_field(md.count, 1);
    register_write(counts, md.idx, md.count);
}
action mark() {
    no_op();
}
table tally_t {
    actions {
        tally;
    }
    size : threshold;
}
table alarm {
    actions {
        mark;
    }
}
control ingress {
    apply(tally_t);
    if (md.count >= threshold) {
        apply(alarm);
    }
}
`

func TestTunableRoundTrip(t *testing.T) {
	prog, err := Parse(tunableSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(prog.Tunables) != 2 {
		t.Fatalf("tunables = %d, want 2", len(prog.Tunables))
	}
	cells := prog.Tunable("cells")
	if cells == nil || cells.Min != 1024 || cells.Max != 65536 || cells.Default != 16384 {
		t.Fatalf("cells = %+v", cells)
	}
	if reg := prog.Register("counts"); reg.CountSym != "cells" || reg.InstanceCount != 16384 {
		t.Fatalf("register counts = %+v", reg)
	}
	if tbl := prog.Table("tally_t"); tbl.SizeSym != "threshold" || tbl.Size != 25 {
		t.Fatalf("table tally_t = %+v", tbl)
	}

	// Print/reparse must preserve the symbolic structure.
	printed := Print(prog)
	again, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if Print(again) != printed {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", printed, Print(again))
	}
	if again.Register("counts").CountSym != "cells" {
		t.Fatal("reparse lost register CountSym")
	}
	call := again.Action("tally").Body[0]
	if sym, ok := call.Args[3].(SymRef); !ok || sym.Name != "cells" || sym.Value != 16384 {
		t.Fatalf("hash modulus arg = %#v", call.Args[3])
	}
}

func TestInstantiate(t *testing.T) {
	prog := MustParse(tunableSrc)
	inst, err := Instantiate(prog, map[string]int{"cells": 2048})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if len(inst.Tunables) != 0 {
		t.Fatal("instantiated program still declares tunables")
	}
	if reg := inst.Register("counts"); reg.CountSym != "" || reg.InstanceCount != 2048 {
		t.Fatalf("register counts = %+v", reg)
	}
	// Unbound tunable takes its default.
	if tbl := inst.Table("tally_t"); tbl.SizeSym != "" || tbl.Size != 25 {
		t.Fatalf("table tally_t = %+v", tbl)
	}
	call := inst.Action("tally").Body[0]
	if lit, ok := call.Args[3].(IntLit); !ok || lit.Value != 2048 {
		t.Fatalf("hash modulus arg = %#v", call.Args[3])
	}
	// The if-condition threshold is concrete too.
	if strings.Contains(Print(inst), "threshold") {
		t.Fatalf("instantiated print still mentions the symbol:\n%s", Print(inst))
	}
	if err := Check(inst); err != nil {
		t.Fatalf("check instantiated: %v", err)
	}

	// Distinct bindings must print distinct source (the cache-key
	// property the tune pass relies on).
	other, err := Instantiate(prog, map[string]int{"cells": 4096})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if Print(other) == Print(inst) {
		t.Fatal("distinct bindings printed identical source")
	}

	// The original is untouched.
	if prog.Register("counts").CountSym != "cells" {
		t.Fatal("instantiate mutated its input")
	}
}

func TestInstantiateErrors(t *testing.T) {
	prog := MustParse(tunableSrc)
	if _, err := Instantiate(prog, map[string]int{"nope": 1}); err == nil {
		t.Fatal("unknown binding accepted")
	}
	if _, err := Instantiate(prog, map[string]int{"cells": 512}); err == nil {
		t.Fatal("below-min binding accepted")
	}
	if _, err := Instantiate(prog, map[string]int{"cells": 1 << 20}); err == nil {
		t.Fatal("above-max binding accepted")
	}
}

func TestTunableParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad range":   "@tunable(x, 10, 5, 7);",
		"default out": "@tunable(x, 1, 5, 9);",
		"zero min":    "@tunable(x, 0, 5, 3);",
		"duplicate":   "@tunable(x, 1, 5, 3);\n@tunable(x, 1, 5, 3);",
		"use before declaration": `register r {
    width : 8;
    instance_count : later;
}
@tunable(later, 1, 10, 5);`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestBindingsHelpers(t *testing.T) {
	b, err := ParseBindings(" cells=2048, threshold=9 ")
	if err != nil {
		t.Fatalf("parse bindings: %v", err)
	}
	if b["cells"] != 2048 || b["threshold"] != 9 {
		t.Fatalf("bindings = %v", b)
	}
	if got := FormatBindings(b); got != "cells=2048,threshold=9" {
		t.Fatalf("format = %q", got)
	}
	if FormatBindings(nil) != "" {
		t.Fatal("nil bindings should format empty")
	}
	for _, bad := range []string{"cells", "=5", "cells=abc"} {
		if _, err := ParseBindings(bad); err == nil {
			t.Errorf("ParseBindings(%q): expected error", bad)
		}
	}

	prog := MustParse(tunableSrc)
	resolved, err := ResolveBindings(prog, map[string]int{"cells": 2048})
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if resolved["cells"] != 2048 || resolved["threshold"] != 25 {
		t.Fatalf("resolved = %v", resolved)
	}
}
