// Package p4 implements a lexer, parser, AST, and printer for the subset of
// the P4_14 language that P2GO operates on: header types and instances,
// parsers, field lists and hash calculations, registers, actions built from
// primitive calls, match-action tables, and control flow with if/else and
// apply statements (including hit/miss blocks).
//
// The printer re-emits ASTs as valid source so that optimization passes can
// rewrite programs and hand them back to the compiler, exactly as P2GO does.
package p4

import "fmt"

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokInt
	TokLBrace  // {
	TokRBrace  // }
	TokLParen  // (
	TokRParen  // )
	TokSemi    // ;
	TokColon   // :
	TokComma   // ,
	TokDot     // .
	TokEq      // ==
	TokNeq     // !=
	TokLt      // <
	TokLe      // <=
	TokGt      // >
	TokGe      // >=
	TokAnd     // and
	TokOr      // or
	TokNot     // not
	TokDefault // default
	TokMask    // &&& (ternary select mask)
	TokAt      // @ (annotation introducer)
)

var tokenNames = map[TokenKind]string{
	TokEOF:     "end of input",
	TokIdent:   "identifier",
	TokInt:     "integer",
	TokLBrace:  "'{'",
	TokRBrace:  "'}'",
	TokLParen:  "'('",
	TokRParen:  "')'",
	TokSemi:    "';'",
	TokColon:   "':'",
	TokComma:   "','",
	TokDot:     "'.'",
	TokEq:      "'=='",
	TokNeq:     "'!='",
	TokLt:      "'<'",
	TokLe:      "'<='",
	TokGt:      "'>'",
	TokGe:      "'>='",
	TokAnd:     "'and'",
	TokOr:      "'or'",
	TokNot:     "'not'",
	TokDefault: "'default'",
	TokMask:    "'&&&'",
	TokAt:      "'@'",
}

func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Int  uint64 // valid when Kind == TokInt
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokInt:
		return fmt.Sprintf("integer %d", t.Int)
	default:
		return t.Kind.String()
	}
}

// Error is a lexical or syntactic error with source position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
