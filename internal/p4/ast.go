package p4

import (
	"fmt"
	"sort"
)

// Program is the root of a parsed P4_14 program. Declaration slices are
// grouped by kind for convenient lookup; Decls preserves source order for
// printing.
type Program struct {
	Tunables     []*Tunable
	HeaderTypes  []*HeaderType
	Instances    []*Instance
	Registers    []*Register
	Counters     []*Counter
	FieldLists   []*FieldList
	Calculations []*FieldListCalc
	CalcFields   []*CalculatedField
	ParserStates []*ParserState
	Actions      []*ActionDecl
	Tables       []*TableDecl
	Controls     []*ControlDecl

	Decls []Decl
}

// Decl is any top-level declaration.
type Decl interface {
	declName() string
}

// Tunable declares a named integer knob with an allowed range:
//
//	@tunable(name, min, max, default);
//
// The name can then stand in for an integer constant in register
// instance_count attributes, table size attributes, and expression
// positions (hash moduli, comparison thresholds). A parsed program
// carries its tunables symbolically; Instantiate resolves them against a
// Bindings map to produce a concrete program. An un-instantiated AST
// still behaves: every use site also records the default value.
type Tunable struct {
	Name    string
	Min     int
	Max     int
	Default int
}

// HeaderType declares a header layout: an ordered list of bit fields.
type HeaderType struct {
	Name   string
	Fields []*FieldDecl
}

// FieldDecl is one field of a header type, Width in bits (1..64).
type FieldDecl struct {
	Name  string
	Width int
}

// Bits returns the total width of the header type in bits.
func (h *HeaderType) Bits() int {
	n := 0
	for _, f := range h.Fields {
		n += f.Width
	}
	return n
}

// Field returns the named field declaration, or nil.
func (h *HeaderType) Field(name string) *FieldDecl {
	for _, f := range h.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Instance is a header or metadata instance of a declared header type.
type Instance struct {
	TypeName string
	Name     string
	Metadata bool
}

// Register declares a stateful register array. When the instance_count
// attribute was written as a tunable name, CountSym records it and
// InstanceCount holds the tunable's default until Instantiate binds it.
type Register struct {
	Name          string
	Width         int    // bits per cell
	InstanceCount int    // number of cells
	CountSym      string // tunable name backing InstanceCount ("" when literal)
}

// Counter declares a packet or byte counter array.
type Counter struct {
	Name          string
	Kind          string // "packets" or "bytes"
	InstanceCount int
}

// FieldList names an ordered list of fields (hash inputs).
type FieldList struct {
	Name   string
	Fields []FieldRef
}

// FieldListCalc binds a field list to a hash algorithm.
type FieldListCalc struct {
	Name        string
	Input       string // field list name
	Algorithm   string // "crc16", "crc32", "identity", "csum16"
	OutputWidth int
}

// CalculatedField declares that a header field is maintained by a
// calculation: the deparser recomputes it on emission (update), and the
// parser may check it (verify; parsed and recorded, not enforced).
type CalculatedField struct {
	Field  FieldRef
	Update string // field_list_calculation name ("" when absent)
	Verify string // field_list_calculation name ("" when absent)
}

// ParserState is one state of the packet parser.
type ParserState struct {
	Name       string
	Statements []ParserStmt
	Return     ParserReturn
}

// ParserStmt is a statement inside a parser state.
type ParserStmt interface{ parserStmt() }

// ExtractStmt extracts a header instance from the packet.
type ExtractStmt struct {
	Instance string
}

// SetMetadataStmt assigns a value to a metadata field during parsing.
type SetMetadataStmt struct {
	Dst   FieldRef
	Value Expr
}

func (*ExtractStmt) parserStmt()     {}
func (*SetMetadataStmt) parserStmt() {}

// ParserReturn terminates a parser state.
type ParserReturn interface{ parserReturn() }

// ReturnState transfers to another parser state, or to "ingress".
type ReturnState struct {
	State string
}

// ReturnSelect branches on one or more field values.
type ReturnSelect struct {
	On    []Expr // FieldRef or CurrentRef operands
	Cases []*SelectCase
}

// SelectCase is one arm of a select. Default arms have IsDefault set.
type SelectCase struct {
	IsDefault bool
	Value     uint64
	HasMask   bool
	Mask      uint64
	State     string
}

func (*ReturnState) parserReturn()  {}
func (*ReturnSelect) parserReturn() {}

// ActionDecl declares a compound action composed of primitive calls.
type ActionDecl struct {
	Name   string
	Params []string
	Body   []*PrimitiveCall
}

// PrimitiveCall invokes a primitive action such as modify_field.
type PrimitiveCall struct {
	Name string
	Args []Expr
}

// Match kinds supported in table reads.
const (
	MatchExact   = "exact"
	MatchLPM     = "lpm"
	MatchTernary = "ternary"
	MatchValid   = "valid"
	MatchRange   = "range"
)

// ReadEntry is one entry of a table's reads block.
type ReadEntry struct {
	Field FieldRef // for MatchValid, Field.Field is empty and Instance names the header
	Kind  string
}

// TableDecl declares a match-action table. When the size attribute was
// written as a tunable name, SizeSym records it and Size holds the
// tunable's default until Instantiate binds it.
type TableDecl struct {
	Name           string
	Reads          []*ReadEntry
	ActionNames    []string
	Size           int
	SizeSym        string // tunable name backing Size ("" when literal)
	DefaultAction  string
	DefaultArgs    []Expr
	SupportTimeout bool
}

// ControlDecl is a control function (ingress/egress) with a statement block.
type ControlDecl struct {
	Name string
	Body *BlockStmt
}

// Stmt is a control-flow statement.
type Stmt interface{ stmt() }

// BlockStmt is a brace-delimited statement sequence.
type BlockStmt struct {
	Stmts []Stmt
}

// ApplyStmt applies a table, optionally with hit/miss blocks.
type ApplyStmt struct {
	Table string
	Hit   *BlockStmt // nil when absent
	Miss  *BlockStmt // nil when absent
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond BoolExpr
	Then *BlockStmt
	Else *BlockStmt // nil when absent
}

func (*BlockStmt) stmt() {}
func (*ApplyStmt) stmt() {}
func (*IfStmt) stmt()    {}

// BoolExpr is a boolean expression in if conditions.
type BoolExpr interface{ boolExpr() }

// ValidExpr tests whether a header instance was parsed.
type ValidExpr struct {
	Instance string
}

// CompareExpr compares two arithmetic expressions.
type CompareExpr struct {
	Left  Expr
	Op    string // ==, !=, <, <=, >, >=
	Right Expr
}

// BinaryBoolExpr combines two boolean expressions with and/or.
type BinaryBoolExpr struct {
	Op    string // "and" or "or"
	Left  BoolExpr
	Right BoolExpr
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	X BoolExpr
}

func (*ValidExpr) boolExpr()      {}
func (*CompareExpr) boolExpr()    {}
func (*BinaryBoolExpr) boolExpr() {}
func (*NotExpr) boolExpr()        {}

// Expr is an arithmetic expression: a field reference, an integer literal,
// or an action parameter reference.
type Expr interface{ expr() }

// FieldRef references instance.field. A bare identifier (action parameter
// or header-only reference) has Field == "".
type FieldRef struct {
	Instance string
	Field    string
}

func (f FieldRef) String() string {
	if f.Field == "" {
		return f.Instance
	}
	return f.Instance + "." + f.Field
}

// IntLit is an integer literal.
type IntLit struct {
	Value uint64
}

// ParamRef references an action parameter by name.
type ParamRef struct {
	Name string
}

// SymRef references a tunable symbol in an expression position. Value
// carries the tunable's declared default so an un-instantiated AST still
// evaluates at its defaults; Instantiate replaces SymRefs with concrete
// IntLits.
type SymRef struct {
	Name  string
	Value uint64
}

func (FieldRef) expr() {}
func (IntLit) expr()   {}
func (ParamRef) expr() {}
func (SymRef) expr()   {}

func (t *Tunable) declName() string         { return t.Name }
func (h *HeaderType) declName() string      { return h.Name }
func (i *Instance) declName() string        { return i.Name }
func (r *Register) declName() string        { return r.Name }
func (c *Counter) declName() string         { return c.Name }
func (f *FieldList) declName() string       { return f.Name }
func (c *FieldListCalc) declName() string   { return c.Name }
func (c *CalculatedField) declName() string { return c.Field.String() }
func (p *ParserState) declName() string     { return p.Name }
func (a *ActionDecl) declName() string      { return a.Name }
func (t *TableDecl) declName() string       { return t.Name }
func (c *ControlDecl) declName() string     { return c.Name }

// Lookup helpers. All return nil when the name is absent.

// Tunable returns the tunable declaration with the given name.
func (p *Program) Tunable(name string) *Tunable {
	for _, t := range p.Tunables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// HeaderType returns the header type declaration with the given name.
func (p *Program) HeaderType(name string) *HeaderType {
	for _, h := range p.HeaderTypes {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Instance returns the header/metadata instance with the given name.
func (p *Program) Instance(name string) *Instance {
	for _, i := range p.Instances {
		if i.Name == name {
			return i
		}
	}
	return nil
}

// Register returns the register with the given name.
func (p *Program) Register(name string) *Register {
	for _, r := range p.Registers {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Counter returns the counter with the given name.
func (p *Program) Counter(name string) *Counter {
	for _, c := range p.Counters {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// FieldList returns the field list with the given name.
func (p *Program) FieldList(name string) *FieldList {
	for _, f := range p.FieldLists {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Calculation returns the field list calculation with the given name.
func (p *Program) Calculation(name string) *FieldListCalc {
	for _, c := range p.Calculations {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ParserState returns the parser state with the given name.
func (p *Program) ParserState(name string) *ParserState {
	for _, s := range p.ParserStates {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Action returns the action declaration with the given name.
func (p *Program) Action(name string) *ActionDecl {
	for _, a := range p.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Table returns the table declaration with the given name.
func (p *Program) Table(name string) *TableDecl {
	for _, t := range p.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Control returns the control declaration with the given name.
func (p *Program) Control(name string) *ControlDecl {
	for _, c := range p.Controls {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// TableNames returns the names of all tables in sorted order.
func (p *Program) TableNames() []string {
	names := make([]string, 0, len(p.Tables))
	for _, t := range p.Tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// addDecl appends d to the ordered declaration list and the per-kind slice.
func (p *Program) addDecl(d Decl) error {
	switch v := d.(type) {
	case *Tunable:
		if p.Tunable(v.Name) != nil {
			return fmt.Errorf("duplicate tunable %q", v.Name)
		}
		p.Tunables = append(p.Tunables, v)
	case *HeaderType:
		if p.HeaderType(v.Name) != nil {
			return fmt.Errorf("duplicate header_type %q", v.Name)
		}
		p.HeaderTypes = append(p.HeaderTypes, v)
	case *Instance:
		if p.Instance(v.Name) != nil {
			return fmt.Errorf("duplicate instance %q", v.Name)
		}
		p.Instances = append(p.Instances, v)
	case *Register:
		if p.Register(v.Name) != nil {
			return fmt.Errorf("duplicate register %q", v.Name)
		}
		p.Registers = append(p.Registers, v)
	case *Counter:
		if p.Counter(v.Name) != nil {
			return fmt.Errorf("duplicate counter %q", v.Name)
		}
		p.Counters = append(p.Counters, v)
	case *FieldList:
		if p.FieldList(v.Name) != nil {
			return fmt.Errorf("duplicate field_list %q", v.Name)
		}
		p.FieldLists = append(p.FieldLists, v)
	case *FieldListCalc:
		if p.Calculation(v.Name) != nil {
			return fmt.Errorf("duplicate field_list_calculation %q", v.Name)
		}
		p.Calculations = append(p.Calculations, v)
	case *CalculatedField:
		for _, cf := range p.CalcFields {
			if cf.Field == v.Field {
				return fmt.Errorf("duplicate calculated_field %s", v.Field)
			}
		}
		p.CalcFields = append(p.CalcFields, v)
	case *ParserState:
		if p.ParserState(v.Name) != nil {
			return fmt.Errorf("duplicate parser state %q", v.Name)
		}
		p.ParserStates = append(p.ParserStates, v)
	case *ActionDecl:
		if p.Action(v.Name) != nil {
			return fmt.Errorf("duplicate action %q", v.Name)
		}
		p.Actions = append(p.Actions, v)
	case *TableDecl:
		if p.Table(v.Name) != nil {
			return fmt.Errorf("duplicate table %q", v.Name)
		}
		p.Tables = append(p.Tables, v)
	case *ControlDecl:
		if p.Control(v.Name) != nil {
			return fmt.Errorf("duplicate control %q", v.Name)
		}
		p.Controls = append(p.Controls, v)
	default:
		return fmt.Errorf("unknown declaration type %T", d)
	}
	p.Decls = append(p.Decls, d)
	return nil
}
