package p4

// parser is a recursive-descent parser over the token stream. prog is the
// program under construction; declarations parsed so far are visible in it,
// which is how tunable names are resolved at their use sites
// (declaration-before-use).
type parser struct {
	lex  *lexer
	tok  Token // current token
	prog *Program
}

// Parse parses a complete P4_14 program.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	p.prog = prog
	for p.tok.Kind != TokEOF {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if err := prog.addDecl(d); err != nil {
			return nil, errAt(p.tok.Line, p.tok.Col, "%v", err)
		}
	}
	return prog, nil
}

// MustParse parses src and panics on error. Intended for embedding known-good
// programs in tests and examples.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errHere(format string, args ...any) error {
	return errAt(p.tok.Line, p.tok.Col, format, args...)
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, p.errHere("expected %s, found %s", kind, p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return Token{}, err
	}
	return t, nil
}

// expectIdent consumes an identifier and returns its text.
func (p *parser) expectIdent() (string, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return "", err
	}
	return t.Text, nil
}

// expectKeyword consumes the identifier kw.
func (p *parser) expectKeyword(kw string) error {
	if p.tok.Kind != TokIdent || p.tok.Text != kw {
		return p.errHere("expected %q, found %s", kw, p.tok)
	}
	return p.advance()
}

// atKeyword reports whether the current token is the identifier kw.
func (p *parser) atKeyword(kw string) bool {
	return p.tok.Kind == TokIdent && p.tok.Text == kw
}

func (p *parser) expectInt() (uint64, error) {
	t, err := p.expect(TokInt)
	if err != nil {
		return 0, err
	}
	return t.Int, nil
}

func (p *parser) parseDecl() (Decl, error) {
	if p.tok.Kind == TokAt {
		return p.parseTunable()
	}
	if p.tok.Kind != TokIdent {
		return nil, p.errHere("expected declaration, found %s", p.tok)
	}
	switch p.tok.Text {
	case "header_type":
		return p.parseHeaderType()
	case "header":
		return p.parseInstance(false)
	case "metadata":
		return p.parseInstance(true)
	case "register":
		return p.parseRegister()
	case "counter":
		return p.parseCounter()
	case "field_list":
		return p.parseFieldList()
	case "field_list_calculation":
		return p.parseFieldListCalc()
	case "calculated_field":
		return p.parseCalculatedField()
	case "parser":
		return p.parseParserState()
	case "action":
		return p.parseAction()
	case "table":
		return p.parseTable()
	case "control":
		return p.parseControl()
	}
	return nil, p.errHere("unknown declaration keyword %q", p.tok.Text)
}

// parseTunable parses "@tunable(name, min, max, default);".
func (p *parser) parseTunable() (*Tunable, error) {
	if err := p.advance(); err != nil { // @
		return nil, err
	}
	if err := p.expectKeyword("tunable"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var vals [3]uint64
	for i := range vals {
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		v, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if v > 1<<31 {
			return nil, p.errHere("tunable %s: value %d out of range", name, v)
		}
		vals[i] = v
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	t := &Tunable{Name: name, Min: int(vals[0]), Max: int(vals[1]), Default: int(vals[2])}
	if t.Min < 1 || t.Min > t.Max || t.Default < t.Min || t.Default > t.Max {
		return nil, p.errHere("tunable %s: need 1 <= min <= default <= max, got (%d, %d, %d)",
			name, t.Min, t.Max, t.Default)
	}
	return t, nil
}

// expectIntOrTunable accepts an integer literal or the name of a
// previously declared tunable. It returns the concrete value (for a
// tunable, its default) and the symbol name ("" for literals).
func (p *parser) expectIntOrTunable() (uint64, string, error) {
	if p.tok.Kind == TokIdent {
		t := p.prog.Tunable(p.tok.Text)
		if t == nil {
			return 0, "", p.errHere("unknown tunable %q (tunables must be declared before use)", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return 0, "", err
		}
		return uint64(t.Default), t.Name, nil
	}
	v, err := p.expectInt()
	return v, "", err
}

func (p *parser) parseHeaderType() (*HeaderType, error) {
	if err := p.advance(); err != nil { // header_type
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("fields"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	ht := &HeaderType{Name: name}
	for p.tok.Kind != TokRBrace {
		fname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		width, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if width == 0 || width > 64 {
			return nil, p.errHere("field %s.%s: width must be 1..64 bits, got %d", name, fname, width)
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		ht.Fields = append(ht.Fields, &FieldDecl{Name: fname, Width: int(width)})
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return ht, nil
}

func (p *parser) parseInstance(metadata bool) (*Instance, error) {
	if err := p.advance(); err != nil { // header | metadata
		return nil, err
	}
	typeName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &Instance{TypeName: typeName, Name: name, Metadata: metadata}, nil
}

func (p *parser) parseRegister() (*Register, error) {
	if err := p.advance(); err != nil { // register
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	reg := &Register{Name: name}
	for p.tok.Kind != TokRBrace {
		key, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		var v uint64
		var sym string
		if key == "instance_count" {
			v, sym, err = p.expectIntOrTunable()
		} else {
			v, err = p.expectInt()
		}
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		switch key {
		case "width":
			if v == 0 || v > 64 {
				return nil, p.errHere("register %s: width must be 1..64 bits", name)
			}
			reg.Width = int(v)
		case "instance_count":
			if v == 0 {
				return nil, p.errHere("register %s: instance_count must be positive", name)
			}
			reg.InstanceCount = int(v)
			reg.CountSym = sym
		default:
			return nil, p.errHere("register %s: unknown attribute %q", name, key)
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if reg.Width == 0 || reg.InstanceCount == 0 {
		return nil, p.errHere("register %s: width and instance_count are required", name)
	}
	return reg, nil
}

func (p *parser) parseCounter() (*Counter, error) {
	if err := p.advance(); err != nil { // counter
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	c := &Counter{Name: name}
	for p.tok.Kind != TokRBrace {
		key, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		switch key {
		case "type":
			kind, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if kind != "packets" && kind != "bytes" {
				return nil, p.errHere("counter %s: type must be packets or bytes", name)
			}
			c.Kind = kind
		case "instance_count":
			v, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if v == 0 {
				return nil, p.errHere("counter %s: instance_count must be positive", name)
			}
			c.InstanceCount = int(v)
		default:
			return nil, p.errHere("counter %s: unknown attribute %q", name, key)
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if c.Kind == "" || c.InstanceCount == 0 {
		return nil, p.errHere("counter %s: type and instance_count are required", name)
	}
	return c, nil
}

func (p *parser) parseFieldList() (*FieldList, error) {
	if err := p.advance(); err != nil { // field_list
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	fl := &FieldList{Name: name}
	for p.tok.Kind != TokRBrace {
		ref, err := p.parseFieldRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		fl.Fields = append(fl.Fields, ref)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return fl, nil
}

func (p *parser) parseFieldListCalc() (*FieldListCalc, error) {
	if err := p.advance(); err != nil { // field_list_calculation
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	calc := &FieldListCalc{Name: name}
	for p.tok.Kind != TokRBrace {
		key, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch key {
		case "input":
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			in, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
			calc.Input = in
		case "algorithm":
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			alg, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			calc.Algorithm = alg
		case "output_width":
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			w, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			calc.OutputWidth = int(w)
		default:
			return nil, p.errHere("field_list_calculation %s: unknown attribute %q", name, key)
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if calc.Input == "" || calc.Algorithm == "" || calc.OutputWidth == 0 {
		return nil, p.errHere("field_list_calculation %s: input, algorithm, output_width are required", name)
	}
	return calc, nil
}

func (p *parser) parseCalculatedField() (*CalculatedField, error) {
	if err := p.advance(); err != nil { // calculated_field
		return nil, err
	}
	ref, err := p.parseFieldRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	cf := &CalculatedField{Field: ref}
	for p.tok.Kind != TokRBrace {
		verb, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		calc, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		switch verb {
		case "update":
			cf.Update = calc
		case "verify":
			cf.Verify = calc
		default:
			return nil, p.errHere("calculated_field %s: unknown verb %q", ref, verb)
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if cf.Update == "" && cf.Verify == "" {
		return nil, p.errHere("calculated_field %s: needs an update or verify clause", ref)
	}
	return cf, nil
}

func (p *parser) parseParserState() (*ParserState, error) {
	if err := p.advance(); err != nil { // parser
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	st := &ParserState{Name: name}
	for {
		if p.atKeyword("extract") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			inst, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			st.Statements = append(st.Statements, &ExtractStmt{Instance: inst})
			continue
		}
		if p.atKeyword("set_metadata") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			dst, err := p.parseFieldRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
			val, err := p.parseExpr(nil)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			st.Statements = append(st.Statements, &SetMetadataStmt{Dst: dst, Value: val})
			continue
		}
		break
	}
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	if p.atKeyword("select") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		ret := &ReturnSelect{}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr(nil)
			if err != nil {
				return nil, err
			}
			ret.On = append(ret.On, e)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLBrace); err != nil {
			return nil, err
		}
		for p.tok.Kind != TokRBrace {
			c := &SelectCase{}
			if p.tok.Kind == TokDefault {
				c.IsDefault = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else {
				v, err := p.expectInt()
				if err != nil {
					return nil, err
				}
				c.Value = v
				if p.tok.Kind == TokMask {
					if err := p.advance(); err != nil {
						return nil, err
					}
					m, err := p.expectInt()
					if err != nil {
						return nil, err
					}
					c.HasMask = true
					c.Mask = m
				}
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			stName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			c.State = stName
			ret.Cases = append(ret.Cases, c)
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		st.Return = ret
	} else {
		target, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		st.Return = &ReturnState{State: target}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseAction() (*ActionDecl, error) {
	if err := p.advance(); err != nil { // action
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	act := &ActionDecl{Name: name}
	for p.tok.Kind != TokRParen {
		param, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		act.Params = append(act.Params, param)
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	params := map[string]bool{}
	for _, prm := range act.Params {
		params[prm] = true
	}
	for p.tok.Kind != TokRBrace {
		prim, err := p.parsePrimitiveCall(params)
		if err != nil {
			return nil, err
		}
		act.Body = append(act.Body, prim)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return act, nil
}

func (p *parser) parsePrimitiveCall(params map[string]bool) (*PrimitiveCall, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	call := &PrimitiveCall{Name: name}
	for p.tok.Kind != TokRParen {
		e, err := p.parseExpr(params)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *parser) parseTable() (*TableDecl, error) {
	if err := p.advance(); err != nil { // table
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	tbl := &TableDecl{Name: name}
	for p.tok.Kind != TokRBrace {
		if p.tok.Kind != TokIdent {
			return nil, p.errHere("table %s: expected attribute, found %s", name, p.tok)
		}
		switch p.tok.Text {
		case "reads":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for p.tok.Kind != TokRBrace {
				ref, err := p.parseFieldRef()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokColon); err != nil {
					return nil, err
				}
				kind, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				switch kind {
				case MatchExact, MatchLPM, MatchTernary, MatchValid, MatchRange:
				default:
					return nil, p.errHere("table %s: unknown match kind %q", name, kind)
				}
				if _, err := p.expect(TokSemi); err != nil {
					return nil, err
				}
				tbl.Reads = append(tbl.Reads, &ReadEntry{Field: ref, Kind: kind})
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
		case "actions":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for p.tok.Kind != TokRBrace {
				an, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokSemi); err != nil {
					return nil, err
				}
				tbl.ActionNames = append(tbl.ActionNames, an)
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
		case "size":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			v, sym, err := p.expectIntOrTunable()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			tbl.Size = int(v)
			tbl.SizeSym = sym
		case "default_action":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			an, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			tbl.DefaultAction = an
			if p.tok.Kind == TokLParen {
				if err := p.advance(); err != nil {
					return nil, err
				}
				for p.tok.Kind != TokRParen {
					e, err := p.parseExpr(nil)
					if err != nil {
						return nil, err
					}
					tbl.DefaultArgs = append(tbl.DefaultArgs, e)
					if p.tok.Kind == TokComma {
						if err := p.advance(); err != nil {
							return nil, err
						}
					}
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		case "support_timeout":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			tbl.SupportTimeout = v == "true"
		default:
			return nil, p.errHere("table %s: unknown attribute %q", name, p.tok.Text)
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if len(tbl.ActionNames) == 0 {
		return nil, p.errHere("table %s: actions block is required", name)
	}
	return tbl, nil
}

func (p *parser) parseControl() (*ControlDecl, error) {
	if err := p.advance(); err != nil { // control
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ControlDecl{Name: name, Body: body}, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	for p.tok.Kind != TokRBrace {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	if p.atKeyword("apply") {
		return p.parseApply()
	}
	if p.atKeyword("if") {
		return p.parseIf()
	}
	return nil, p.errHere("expected 'apply' or 'if', found %s", p.tok)
}

func (p *parser) parseApply() (*ApplyStmt, error) {
	if err := p.advance(); err != nil { // apply
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	ap := &ApplyStmt{Table: table}
	if p.tok.Kind == TokSemi {
		return ap, p.advance()
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokRBrace {
		if p.atKeyword("hit") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			if ap.Hit != nil {
				return nil, p.errHere("apply(%s): duplicate hit block", table)
			}
			ap.Hit = blk
		} else if p.atKeyword("miss") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			if ap.Miss != nil {
				return nil, p.errHere("apply(%s): duplicate miss block", table)
			}
			ap.Miss = blk
		} else {
			return nil, p.errHere("apply(%s): expected 'hit' or 'miss' case, found %s", table, p.tok)
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return ap, nil
}

func (p *parser) parseIf() (*IfStmt, error) {
	if err := p.advance(); err != nil { // if
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseBoolExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.atKeyword("else") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("if") {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = &BlockStmt{Stmts: []Stmt{nested}}
		} else {
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = blk
		}
	}
	return st, nil
}

// parseBoolExpr parses an or-expression (lowest precedence).
func (p *parser) parseBoolExpr() (BoolExpr, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryBoolExpr{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAndExpr() (BoolExpr, error) {
	left, err := p.parseBoolUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseBoolUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryBoolExpr{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseBoolUnary() (BoolExpr, error) {
	switch {
	case p.tok.Kind == TokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseBoolUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	case p.tok.Kind == TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseBoolExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case p.atKeyword("valid"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		inst, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &ValidExpr{Instance: inst}, nil
	}
	// Comparison: expr relop expr.
	left, err := p.parseExpr(nil)
	if err != nil {
		return nil, err
	}
	var op string
	switch p.tok.Kind {
	case TokEq:
		op = "=="
	case TokNeq:
		op = "!="
	case TokLt:
		op = "<"
	case TokLe:
		op = "<="
	case TokGt:
		op = ">"
	case TokGe:
		op = ">="
	default:
		return nil, p.errHere("expected comparison operator, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.parseExpr(nil)
	if err != nil {
		return nil, err
	}
	return &CompareExpr{Left: left, Op: op, Right: right}, nil
}

// parseExpr parses an atomic expression: integer literal, instance.field
// reference, action parameter (when params is non-nil and contains the
// identifier), or bare identifier (treated as an instance-only reference,
// used for register and calculation names in primitive arguments).
func (p *parser) parseExpr(params map[string]bool) (Expr, error) {
	if p.tok.Kind == TokInt {
		v := p.tok.Int
		if err := p.advance(); err != nil {
			return nil, err
		}
		return IntLit{Value: v}, nil
	}
	ref, err := p.parseFieldRef()
	if err != nil {
		return nil, err
	}
	if ref.Field == "" {
		if params != nil && params[ref.Instance] {
			return ParamRef{Name: ref.Instance}, nil
		}
		if p.prog != nil {
			if t := p.prog.Tunable(ref.Instance); t != nil {
				return SymRef{Name: t.Name, Value: uint64(t.Default)}, nil
			}
		}
	}
	return ref, nil
}

// parseFieldRef parses ident or ident.ident.
func (p *parser) parseFieldRef() (FieldRef, error) {
	inst, err := p.expectIdent()
	if err != nil {
		return FieldRef{}, err
	}
	ref := FieldRef{Instance: inst}
	if p.tok.Kind == TokDot {
		if err := p.advance(); err != nil {
			return FieldRef{}, err
		}
		f, err := p.expectIdent()
		if err != nil {
			return FieldRef{}, err
		}
		ref.Field = f
	}
	return ref, nil
}
