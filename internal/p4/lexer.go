package p4

import (
	"strconv"
	"strings"
)

// lexer turns P4_14 source text into a token stream. It supports //- and
// /* */-style comments, decimal and hexadecimal integer literals, and
// P4_14 width-prefixed literals such as 8w255 (the width prefix is parsed
// and discarded; the value is what matters to the tools built on top).
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for {
		c, ok := l.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errAt(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token from the input.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	switch {
	case isIdentStart(c):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		switch text {
		case "and":
			kind = TokAnd
		case "or":
			kind = TokOr
		case "not":
			kind = TokNot
		case "default":
			kind = TokDefault
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case isDigit(c):
		return l.lexNumber(line, col)
	}
	l.advance()
	simple := func(k TokenKind, text string) (Token, error) {
		return Token{Kind: k, Text: text, Line: line, Col: col}, nil
	}
	switch c {
	case '{':
		return simple(TokLBrace, "{")
	case '}':
		return simple(TokRBrace, "}")
	case '(':
		return simple(TokLParen, "(")
	case ')':
		return simple(TokRParen, ")")
	case ';':
		return simple(TokSemi, ";")
	case ':':
		return simple(TokColon, ":")
	case ',':
		return simple(TokComma, ",")
	case '.':
		return simple(TokDot, ".")
	case '@':
		return simple(TokAt, "@")
	case '=':
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return simple(TokEq, "==")
		}
		return Token{}, errAt(line, col, "unexpected '='; did you mean '=='?")
	case '!':
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return simple(TokNeq, "!=")
		}
		return Token{}, errAt(line, col, "unexpected '!'; did you mean '!='?")
	case '<':
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return simple(TokLe, "<=")
		}
		return simple(TokLt, "<")
	case '>':
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return simple(TokGe, ">=")
		}
		return simple(TokGt, ">")
	case '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.advance()
			l.advance()
			return simple(TokMask, "&&&")
		}
		return Token{}, errAt(line, col, "unexpected '&'; only '&&&' is supported")
	}
	return Token{}, errAt(line, col, "unexpected character %q", string(c))
}

// lexNumber parses decimal, hexadecimal (0x...), and width-prefixed (8w255,
// 16w0x1F) integer literals.
func (l *lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == 'x' || c == 'X' || c == 'w' {
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	// Strip a P4_14 width prefix like "8w" or "16w0xff".
	value := text
	if i := strings.IndexByte(text, 'w'); i > 0 {
		if _, err := strconv.ParseUint(text[:i], 10, 16); err == nil {
			value = text[i+1:]
		}
	}
	var v uint64
	var err error
	if strings.HasPrefix(value, "0x") || strings.HasPrefix(value, "0X") {
		v, err = strconv.ParseUint(value[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(value, 10, 64)
	}
	if err != nil {
		return Token{}, errAt(line, col, "invalid integer literal %q", text)
	}
	return Token{Kind: TokInt, Text: text, Int: v, Line: line, Col: col}, nil
}

// Lex tokenizes src fully; mainly a convenience for tests.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
