package p4

import (
	"fmt"
)

// Primitive action names understood by the toolchain. min/max are documented
// extensions over stock P4_14 (where programmers emulate them with tables);
// they keep the Count-Min Sketch examples compact without changing any of
// the dependency or memory behaviour P2GO reasons about.
const (
	PrimModifyField   = "modify_field"
	PrimAddToField    = "add_to_field"
	PrimSubFromField  = "subtract_from_field"
	PrimBitAnd        = "bit_and"
	PrimBitOr         = "bit_or"
	PrimBitXor        = "bit_xor"
	PrimMin           = "min"
	PrimMax           = "max"
	PrimDrop          = "drop"
	PrimNoOp          = "no_op"
	PrimRegisterRead  = "register_read"
	PrimRegisterWrite = "register_write"
	PrimHashOffset    = "modify_field_with_hash_based_offset"
	PrimCount         = "count"
)

// primitiveArity maps each primitive to its required argument count.
var primitiveArity = map[string]int{
	PrimModifyField:   2,
	PrimAddToField:    2,
	PrimSubFromField:  2,
	PrimBitAnd:        3,
	PrimBitOr:         3,
	PrimBitXor:        3,
	PrimMin:           3,
	PrimMax:           3,
	PrimDrop:          0,
	PrimNoOp:          0,
	PrimRegisterRead:  3,
	PrimRegisterWrite: 3,
	PrimHashOffset:    4,
	PrimCount:         2,
}

// KnownPrimitive reports whether name is a recognized primitive action.
func KnownPrimitive(name string) bool {
	_, ok := primitiveArity[name]
	return ok
}

// Names of builtin entities.
const (
	StandardMetadataType = "standard_metadata_t"
	StandardMetadataName = "standard_metadata"
	IngressControl       = "ingress"
	EgressControl        = "egress"
	StartState           = "start"
)

// Standard metadata fields.
const (
	FieldIngressPort  = "ingress_port"
	FieldEgressSpec   = "egress_spec"
	FieldEgressPort   = "egress_port"
	FieldPacketLength = "packet_length"
	FieldInstanceType = "instance_type"
)

// standardMetadataType returns the builtin standard_metadata_t header type.
func standardMetadataType() *HeaderType {
	return &HeaderType{
		Name: StandardMetadataType,
		Fields: []*FieldDecl{
			{Name: FieldIngressPort, Width: 9},
			{Name: FieldEgressSpec, Width: 9},
			{Name: FieldEgressPort, Width: 9},
			{Name: FieldPacketLength, Width: 16},
			{Name: FieldInstanceType, Width: 8},
		},
	}
}

// EnsureBuiltins adds the builtin standard_metadata declaration to the
// program if the source did not declare it. It is idempotent.
func EnsureBuiltins(p *Program) {
	if p.HeaderType(StandardMetadataType) == nil {
		ht := standardMetadataType()
		p.HeaderTypes = append(p.HeaderTypes, ht)
		p.Decls = append([]Decl{ht}, p.Decls...)
	}
	if p.Instance(StandardMetadataName) == nil {
		inst := &Instance{TypeName: StandardMetadataType, Name: StandardMetadataName, Metadata: true}
		p.Instances = append(p.Instances, inst)
		// Insert after the header type for readable printing.
		p.Decls = append([]Decl{p.Decls[0], inst}, p.Decls[1:]...)
	}
}

// Check validates the program: all names resolve, primitive arities match,
// tables reference declared actions, the control flow references declared
// tables, each table is applied at most once (an RMT constraint the stage
// allocator relies on), and an ingress control exists. Check calls
// EnsureBuiltins first, so callers get standard_metadata for free.
func Check(p *Program) error {
	EnsureBuiltins(p)

	if err := checkTunables(p); err != nil {
		return err
	}

	for _, inst := range p.Instances {
		if p.HeaderType(inst.TypeName) == nil {
			return fmt.Errorf("instance %q: unknown header type %q", inst.Name, inst.TypeName)
		}
	}

	resolveField := func(where string, ref FieldRef) error {
		inst := p.Instance(ref.Instance)
		if inst == nil {
			return fmt.Errorf("%s: unknown instance %q", where, ref.Instance)
		}
		if ref.Field == "" {
			return fmt.Errorf("%s: %q is not a field reference", where, ref.Instance)
		}
		ht := p.HeaderType(inst.TypeName)
		if ht.Field(ref.Field) == nil {
			return fmt.Errorf("%s: header type %q has no field %q", where, inst.TypeName, ref.Field)
		}
		return nil
	}

	for _, fl := range p.FieldLists {
		for _, f := range fl.Fields {
			if err := resolveField("field_list "+fl.Name, f); err != nil {
				return err
			}
		}
	}
	for _, c := range p.Calculations {
		if p.FieldList(c.Input) == nil {
			return fmt.Errorf("field_list_calculation %q: unknown field list %q", c.Name, c.Input)
		}
		switch c.Algorithm {
		case "crc16", "crc32", "identity", "csum16":
		default:
			return fmt.Errorf("field_list_calculation %q: unknown algorithm %q", c.Name, c.Algorithm)
		}
		if c.OutputWidth <= 0 || c.OutputWidth > 64 {
			return fmt.Errorf("field_list_calculation %q: output_width must be 1..64", c.Name)
		}
	}

	for _, cf := range p.CalcFields {
		if err := resolveField("calculated_field", cf.Field); err != nil {
			return err
		}
		for _, calc := range []string{cf.Update, cf.Verify} {
			if calc != "" && p.Calculation(calc) == nil {
				return fmt.Errorf("calculated_field %s: unknown calculation %q", cf.Field, calc)
			}
		}
	}

	if err := checkParsers(p); err != nil {
		return err
	}
	if err := checkActions(p, resolveField); err != nil {
		return err
	}
	if err := checkTables(p); err != nil {
		return err
	}
	return checkControls(p, resolveField)
}

// checkTunables validates tunable ranges and rejects name collisions with
// the declaration kinds a bare identifier can reference (which is how
// tunable use sites are resolved).
func checkTunables(p *Program) error {
	for _, t := range p.Tunables {
		if t.Min < 1 || t.Min > t.Max || t.Default < t.Min || t.Default > t.Max {
			return fmt.Errorf("tunable %q: need 1 <= min <= default <= max, got (%d, %d, %d)",
				t.Name, t.Min, t.Max, t.Default)
		}
		if p.Instance(t.Name) != nil || p.Register(t.Name) != nil ||
			p.Counter(t.Name) != nil || p.Calculation(t.Name) != nil {
			return fmt.Errorf("tunable %q: name collides with another declaration", t.Name)
		}
	}
	check := func(where, sym string) error {
		if sym != "" && p.Tunable(sym) == nil {
			return fmt.Errorf("%s: unknown tunable %q", where, sym)
		}
		return nil
	}
	for _, r := range p.Registers {
		if err := check("register "+r.Name, r.CountSym); err != nil {
			return err
		}
	}
	for _, t := range p.Tables {
		if err := check("table "+t.Name, t.SizeSym); err != nil {
			return err
		}
	}
	return nil
}

func checkParsers(p *Program) error {
	if len(p.ParserStates) > 0 && p.ParserState(StartState) == nil {
		return fmt.Errorf("parser: no %q state", StartState)
	}
	for _, st := range p.ParserStates {
		where := "parser " + st.Name
		for _, s := range st.Statements {
			switch v := s.(type) {
			case *ExtractStmt:
				inst := p.Instance(v.Instance)
				if inst == nil {
					return fmt.Errorf("%s: extract of unknown instance %q", where, v.Instance)
				}
				if inst.Metadata {
					return fmt.Errorf("%s: cannot extract metadata instance %q", where, v.Instance)
				}
			case *SetMetadataStmt:
				inst := p.Instance(v.Dst.Instance)
				if inst == nil || !inst.Metadata {
					return fmt.Errorf("%s: set_metadata target %s is not metadata", where, v.Dst)
				}
			}
		}
		switch r := st.Return.(type) {
		case *ReturnState:
			if r.State != IngressControl && p.ParserState(r.State) == nil {
				return fmt.Errorf("%s: return to unknown state %q", where, r.State)
			}
		case *ReturnSelect:
			if len(r.On) == 0 {
				return fmt.Errorf("%s: select with no operands", where)
			}
			hasDefault := false
			for _, c := range r.Cases {
				if c.IsDefault {
					hasDefault = true
				}
				if c.State != IngressControl && p.ParserState(c.State) == nil {
					return fmt.Errorf("%s: select case returns to unknown state %q", where, c.State)
				}
			}
			if !hasDefault {
				return fmt.Errorf("%s: select requires a default case", where)
			}
		case nil:
			return fmt.Errorf("%s: missing return", where)
		}
	}
	return nil
}

func checkActions(p *Program, resolveField func(string, FieldRef) error) error {
	for _, a := range p.Actions {
		where := "action " + a.Name
		if KnownPrimitive(a.Name) {
			return fmt.Errorf("%s: name collides with a primitive", where)
		}
		for _, call := range a.Body {
			arity, ok := primitiveArity[call.Name]
			if !ok {
				return fmt.Errorf("%s: unknown primitive %q", where, call.Name)
			}
			if len(call.Args) != arity {
				return fmt.Errorf("%s: %s expects %d args, got %d", where, call.Name, arity, len(call.Args))
			}
			if err := checkPrimitiveArgs(p, where, call, resolveField); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkPrimitiveArgs(p *Program, where string, call *PrimitiveCall, resolveField func(string, FieldRef) error) error {
	checkValue := func(e Expr) error {
		switch v := e.(type) {
		case FieldRef:
			return resolveField(where, v)
		case IntLit, ParamRef, SymRef:
			return nil
		}
		return fmt.Errorf("%s: invalid argument", where)
	}
	checkDstField := func(e Expr) error {
		ref, ok := e.(FieldRef)
		if !ok {
			return fmt.Errorf("%s: %s destination must be a field", where, call.Name)
		}
		return resolveField(where, ref)
	}
	switch call.Name {
	case PrimModifyField, PrimAddToField, PrimSubFromField:
		if err := checkDstField(call.Args[0]); err != nil {
			return err
		}
		return checkValue(call.Args[1])
	case PrimBitAnd, PrimBitOr, PrimBitXor, PrimMin, PrimMax:
		if err := checkDstField(call.Args[0]); err != nil {
			return err
		}
		if err := checkValue(call.Args[1]); err != nil {
			return err
		}
		return checkValue(call.Args[2])
	case PrimRegisterRead:
		if err := checkDstField(call.Args[0]); err != nil {
			return err
		}
		reg, ok := call.Args[1].(FieldRef)
		if !ok || reg.Field != "" || p.Register(reg.Instance) == nil {
			return fmt.Errorf("%s: register_read second argument must name a register", where)
		}
		return checkValue(call.Args[2])
	case PrimRegisterWrite:
		reg, ok := call.Args[0].(FieldRef)
		if !ok || reg.Field != "" || p.Register(reg.Instance) == nil {
			return fmt.Errorf("%s: register_write first argument must name a register", where)
		}
		if err := checkValue(call.Args[1]); err != nil {
			return err
		}
		return checkValue(call.Args[2])
	case PrimHashOffset:
		if err := checkDstField(call.Args[0]); err != nil {
			return err
		}
		if err := checkValue(call.Args[1]); err != nil {
			return err
		}
		calc, ok := call.Args[2].(FieldRef)
		if !ok || calc.Field != "" || p.Calculation(calc.Instance) == nil {
			return fmt.Errorf("%s: %s third argument must name a field_list_calculation", where, call.Name)
		}
		return checkValue(call.Args[3])
	case PrimCount:
		ctr, ok := call.Args[0].(FieldRef)
		if !ok || ctr.Field != "" || p.Counter(ctr.Instance) == nil {
			return fmt.Errorf("%s: count first argument must name a counter", where)
		}
		return checkValue(call.Args[1])
	case PrimDrop, PrimNoOp:
		return nil
	}
	return nil
}

func checkTables(p *Program) error {
	for _, t := range p.Tables {
		where := "table " + t.Name
		for _, r := range t.Reads {
			if r.Kind == MatchValid {
				if r.Field.Field != "" {
					return fmt.Errorf("%s: valid match must name a header instance, not a field", where)
				}
				inst := p.Instance(r.Field.Instance)
				if inst == nil {
					return fmt.Errorf("%s: valid match on unknown instance %q", where, r.Field.Instance)
				}
				continue
			}
			inst := p.Instance(r.Field.Instance)
			if inst == nil {
				return fmt.Errorf("%s: reads unknown instance %q", where, r.Field.Instance)
			}
			ht := p.HeaderType(inst.TypeName)
			if ht.Field(r.Field.Field) == nil {
				return fmt.Errorf("%s: reads unknown field %s", where, r.Field)
			}
		}
		for _, an := range t.ActionNames {
			if p.Action(an) == nil {
				return fmt.Errorf("%s: unknown action %q", where, an)
			}
		}
		if t.DefaultAction != "" {
			found := false
			for _, an := range t.ActionNames {
				if an == t.DefaultAction {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%s: default_action %q is not in the actions list", where, t.DefaultAction)
			}
			da := p.Action(t.DefaultAction)
			if da != nil && len(da.Params) != len(t.DefaultArgs) {
				return fmt.Errorf("%s: default_action %q expects %d args, got %d",
					where, t.DefaultAction, len(da.Params), len(t.DefaultArgs))
			}
		}
		if t.Size < 0 {
			return fmt.Errorf("%s: negative size", where)
		}
	}
	return nil
}

func checkControls(p *Program, resolveField func(string, FieldRef) error) error {
	if p.Control(IngressControl) == nil {
		return fmt.Errorf("control: no %q control declared", IngressControl)
	}
	applied := map[string]bool{}
	for _, c := range p.Controls {
		where := "control " + c.Name
		ok := true
		var walkErr error
		WalkStmts(c.Body, func(s Stmt) bool {
			switch v := s.(type) {
			case *ApplyStmt:
				if p.Table(v.Table) == nil {
					walkErr = fmt.Errorf("%s: apply of unknown table %q", where, v.Table)
					ok = false
					return false
				}
				if applied[v.Table] {
					walkErr = fmt.Errorf("%s: table %q applied more than once", where, v.Table)
					ok = false
					return false
				}
				applied[v.Table] = true
			case *IfStmt:
				if err := checkBoolExpr(p, where, v.Cond, resolveField); err != nil {
					walkErr = err
					ok = false
					return false
				}
			}
			return true
		})
		if !ok {
			return walkErr
		}
	}
	return nil
}

func checkBoolExpr(p *Program, where string, e BoolExpr, resolveField func(string, FieldRef) error) error {
	switch v := e.(type) {
	case *ValidExpr:
		if p.Instance(v.Instance) == nil {
			return fmt.Errorf("%s: valid() on unknown instance %q", where, v.Instance)
		}
		return nil
	case *CompareExpr:
		for _, side := range []Expr{v.Left, v.Right} {
			if ref, ok := side.(FieldRef); ok {
				if err := resolveField(where, ref); err != nil {
					return err
				}
			}
		}
		return nil
	case *BinaryBoolExpr:
		if err := checkBoolExpr(p, where, v.Left, resolveField); err != nil {
			return err
		}
		return checkBoolExpr(p, where, v.Right, resolveField)
	case *NotExpr:
		return checkBoolExpr(p, where, v.X, resolveField)
	}
	return fmt.Errorf("%s: unknown boolean expression", where)
}
