package p4

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ResolveBindings validates bindings against the program's tunables and
// returns the complete assignment: every declared tunable mapped to its
// bound value, with defaults filling the gaps. Unknown names and
// out-of-range values are errors; a program with no tunables accepts only
// nil or empty bindings.
func ResolveBindings(p *Program, bindings map[string]int) (map[string]int, error) {
	for name := range bindings {
		if p.Tunable(name) == nil {
			return nil, fmt.Errorf("binding %q: program declares no such tunable", name)
		}
	}
	out := make(map[string]int, len(p.Tunables))
	for _, t := range p.Tunables {
		v, ok := bindings[t.Name]
		if !ok {
			v = t.Default
		}
		if v < t.Min || v > t.Max {
			return nil, fmt.Errorf("binding %s=%d: outside [%d, %d]", t.Name, v, t.Min, t.Max)
		}
		out[t.Name] = v
	}
	return out, nil
}

// Instantiate resolves the program's tunable symbols against bindings and
// returns a concrete program: SymRefs become IntLits, symbolic register
// and table attributes become their bound integers, and the tunable
// declarations themselves are dropped. Missing bindings take the
// tunable's default; unknown names and out-of-range values are errors.
//
// Distinct bindings print distinct source, so everything keyed off
// Print(ast) — the analysis cache, artifact digests — distinguishes
// instantiations without any key-schema change. For a program with no
// tunables, Instantiate(p, nil) is equivalent to Clone(p).
func Instantiate(p *Program, bindings map[string]int) (*Program, error) {
	resolved, err := ResolveBindings(p, bindings)
	if err != nil {
		return nil, err
	}
	out := &Program{}
	for _, d := range p.Decls {
		if _, ok := d.(*Tunable); ok {
			continue
		}
		nd := cloneDecl(d)
		bindDecl(nd, resolved)
		if err := out.addDecl(nd); err != nil {
			return nil, fmt.Errorf("instantiate: %v", err)
		}
	}
	return out, nil
}

func bindDecl(d Decl, b map[string]int) {
	switch v := d.(type) {
	case *Register:
		if v.CountSym != "" {
			if val, ok := b[v.CountSym]; ok {
				v.InstanceCount = val
			}
			v.CountSym = ""
		}
	case *TableDecl:
		if v.SizeSym != "" {
			if val, ok := b[v.SizeSym]; ok {
				v.Size = val
			}
			v.SizeSym = ""
		}
		bindExprs(v.DefaultArgs, b)
	case *ActionDecl:
		for _, c := range v.Body {
			bindExprs(c.Args, b)
		}
	case *ParserState:
		for _, s := range v.Statements {
			if sm, ok := s.(*SetMetadataStmt); ok {
				sm.Value = bindExpr(sm.Value, b)
			}
		}
		if sel, ok := v.Return.(*ReturnSelect); ok {
			bindExprs(sel.On, b)
		}
	case *ControlDecl:
		WalkStmts(v.Body, func(s Stmt) bool {
			if ifs, ok := s.(*IfStmt); ok {
				bindBool(ifs.Cond, b)
			}
			return true
		})
	}
}

func bindExpr(e Expr, b map[string]int) Expr {
	if s, ok := e.(SymRef); ok {
		if val, ok := b[s.Name]; ok {
			return IntLit{Value: uint64(val)}
		}
		// A SymRef whose symbol is undeclared (hand-built AST); fall
		// back to the value it carries.
		return IntLit{Value: s.Value}
	}
	return e
}

func bindExprs(es []Expr, b map[string]int) {
	for i, e := range es {
		es[i] = bindExpr(e, b)
	}
}

func bindBool(e BoolExpr, b map[string]int) {
	switch v := e.(type) {
	case *CompareExpr:
		v.Left = bindExpr(v.Left, b)
		v.Right = bindExpr(v.Right, b)
	case *BinaryBoolExpr:
		bindBool(v.Left, b)
		bindBool(v.Right, b)
	case *NotExpr:
		bindBool(v.X, b)
	}
}

// FormatBindings renders bindings canonically: "name=value" pairs sorted
// by name, comma-joined. Digest builders, reports, and observations all
// share this form.
func FormatBindings(b map[string]int) string {
	if len(b) == 0 {
		return ""
	}
	names := make([]string, 0, len(b))
	for k := range b {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, b[k])
	}
	return strings.Join(parts, ",")
}

// ParseBindings parses the comma-separated "name=value" form the CLI
// -set flag accepts (e.g. "bf_cells=120000,cms_cells=32000").
func ParseBindings(s string) (map[string]int, error) {
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		val = strings.TrimSpace(val)
		if !ok || name == "" || val == "" {
			return nil, fmt.Errorf("binding %q: want name=value", part)
		}
		v, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("binding %q: invalid value", part)
		}
		out[name] = v
	}
	return out, nil
}
