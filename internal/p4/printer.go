package p4

import (
	"fmt"
	"strings"
)

// Print renders a program back to P4_14 source. The output parses back to an
// equivalent AST (round-trip property, see tests), which is what lets the
// optimizer hand rewritten programs to the compiler, and the programmer read
// them.
func Print(p *Program) string {
	var b strings.Builder
	for i, d := range p.Decls {
		if i > 0 {
			b.WriteByte('\n')
		}
		printDecl(&b, d)
	}
	return b.String()
}

func printDecl(b *strings.Builder, d Decl) {
	switch v := d.(type) {
	case *Tunable:
		fmt.Fprintf(b, "@tunable(%s, %d, %d, %d);\n", v.Name, v.Min, v.Max, v.Default)
	case *HeaderType:
		fmt.Fprintf(b, "header_type %s {\n    fields {\n", v.Name)
		for _, f := range v.Fields {
			fmt.Fprintf(b, "        %s : %d;\n", f.Name, f.Width)
		}
		b.WriteString("    }\n}\n")
	case *Instance:
		kw := "header"
		if v.Metadata {
			kw = "metadata"
		}
		fmt.Fprintf(b, "%s %s %s;\n", kw, v.TypeName, v.Name)
	case *Register:
		count := fmt.Sprintf("%d", v.InstanceCount)
		if v.CountSym != "" {
			count = v.CountSym
		}
		fmt.Fprintf(b, "register %s {\n    width : %d;\n    instance_count : %s;\n}\n",
			v.Name, v.Width, count)
	case *Counter:
		fmt.Fprintf(b, "counter %s {\n    type : %s;\n    instance_count : %d;\n}\n",
			v.Name, v.Kind, v.InstanceCount)
	case *FieldList:
		fmt.Fprintf(b, "field_list %s {\n", v.Name)
		for _, f := range v.Fields {
			fmt.Fprintf(b, "    %s;\n", f)
		}
		b.WriteString("}\n")
	case *FieldListCalc:
		fmt.Fprintf(b, "field_list_calculation %s {\n    input {\n        %s;\n    }\n    algorithm : %s;\n    output_width : %d;\n}\n",
			v.Name, v.Input, v.Algorithm, v.OutputWidth)
	case *CalculatedField:
		fmt.Fprintf(b, "calculated_field %s {\n", v.Field)
		if v.Verify != "" {
			fmt.Fprintf(b, "    verify %s;\n", v.Verify)
		}
		if v.Update != "" {
			fmt.Fprintf(b, "    update %s;\n", v.Update)
		}
		b.WriteString("}\n")
	case *ParserState:
		fmt.Fprintf(b, "parser %s {\n", v.Name)
		for _, s := range v.Statements {
			switch st := s.(type) {
			case *ExtractStmt:
				fmt.Fprintf(b, "    extract(%s);\n", st.Instance)
			case *SetMetadataStmt:
				fmt.Fprintf(b, "    set_metadata(%s, %s);\n", st.Dst, exprString(st.Value))
			}
		}
		switch r := v.Return.(type) {
		case *ReturnState:
			fmt.Fprintf(b, "    return %s;\n", r.State)
		case *ReturnSelect:
			ons := make([]string, len(r.On))
			for i, e := range r.On {
				ons[i] = exprString(e)
			}
			fmt.Fprintf(b, "    return select(%s) {\n", strings.Join(ons, ", "))
			for _, c := range r.Cases {
				switch {
				case c.IsDefault:
					fmt.Fprintf(b, "        default : %s;\n", c.State)
				case c.HasMask:
					fmt.Fprintf(b, "        0x%x &&& 0x%x : %s;\n", c.Value, c.Mask, c.State)
				default:
					fmt.Fprintf(b, "        0x%x : %s;\n", c.Value, c.State)
				}
			}
			b.WriteString("    }\n")
		}
		b.WriteString("}\n")
	case *ActionDecl:
		fmt.Fprintf(b, "action %s(%s) {\n", v.Name, strings.Join(v.Params, ", "))
		for _, c := range v.Body {
			args := make([]string, len(c.Args))
			for i, a := range c.Args {
				args[i] = exprString(a)
			}
			fmt.Fprintf(b, "    %s(%s);\n", c.Name, strings.Join(args, ", "))
		}
		b.WriteString("}\n")
	case *TableDecl:
		fmt.Fprintf(b, "table %s {\n", v.Name)
		if len(v.Reads) > 0 {
			b.WriteString("    reads {\n")
			for _, r := range v.Reads {
				fmt.Fprintf(b, "        %s : %s;\n", r.Field, r.Kind)
			}
			b.WriteString("    }\n")
		}
		b.WriteString("    actions {\n")
		for _, a := range v.ActionNames {
			fmt.Fprintf(b, "        %s;\n", a)
		}
		b.WriteString("    }\n")
		switch {
		case v.SizeSym != "":
			fmt.Fprintf(b, "    size : %s;\n", v.SizeSym)
		case v.Size > 0:
			fmt.Fprintf(b, "    size : %d;\n", v.Size)
		}
		if v.DefaultAction != "" {
			if len(v.DefaultArgs) > 0 {
				args := make([]string, len(v.DefaultArgs))
				for i, a := range v.DefaultArgs {
					args[i] = exprString(a)
				}
				fmt.Fprintf(b, "    default_action : %s(%s);\n", v.DefaultAction, strings.Join(args, ", "))
			} else {
				fmt.Fprintf(b, "    default_action : %s;\n", v.DefaultAction)
			}
		}
		if v.SupportTimeout {
			b.WriteString("    support_timeout : true;\n")
		}
		b.WriteString("}\n")
	case *ControlDecl:
		fmt.Fprintf(b, "control %s ", v.Name)
		printBlock(b, v.Body, 0)
		b.WriteByte('\n')
	}
}

func printBlock(b *strings.Builder, blk *BlockStmt, depth int) {
	indent := strings.Repeat("    ", depth)
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, depth+1)
	}
	b.WriteString(indent + "}")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	indent := strings.Repeat("    ", depth)
	switch v := s.(type) {
	case *ApplyStmt:
		if v.Hit == nil && v.Miss == nil {
			fmt.Fprintf(b, "%sapply(%s);\n", indent, v.Table)
			return
		}
		fmt.Fprintf(b, "%sapply(%s) {\n", indent, v.Table)
		if v.Hit != nil {
			fmt.Fprintf(b, "%s    hit ", indent)
			printBlock(b, v.Hit, depth+1)
			b.WriteByte('\n')
		}
		if v.Miss != nil {
			fmt.Fprintf(b, "%s    miss ", indent)
			printBlock(b, v.Miss, depth+1)
			b.WriteByte('\n')
		}
		fmt.Fprintf(b, "%s}\n", indent)
	case *IfStmt:
		fmt.Fprintf(b, "%sif (%s) ", indent, BoolExprString(v.Cond))
		printBlock(b, v.Then, depth)
		if v.Else != nil {
			b.WriteString(" else ")
			printBlock(b, v.Else, depth)
		}
		b.WriteByte('\n')
	case *BlockStmt:
		b.WriteString(indent)
		printBlock(b, v, depth)
		b.WriteByte('\n')
	}
}

func exprString(e Expr) string {
	switch v := e.(type) {
	case FieldRef:
		return v.String()
	case IntLit:
		return fmt.Sprintf("%d", v.Value)
	case ParamRef:
		return v.Name
	case SymRef:
		return v.Name
	}
	return "<?>"
}

// ExprString renders an expression as source text.
func ExprString(e Expr) string { return exprString(e) }

// BoolExprString renders a boolean expression as source text.
func BoolExprString(e BoolExpr) string {
	switch v := e.(type) {
	case *ValidExpr:
		return fmt.Sprintf("valid(%s)", v.Instance)
	case *CompareExpr:
		return fmt.Sprintf("%s %s %s", exprString(v.Left), v.Op, exprString(v.Right))
	case *BinaryBoolExpr:
		return fmt.Sprintf("(%s) %s (%s)", BoolExprString(v.Left), v.Op, BoolExprString(v.Right))
	case *NotExpr:
		return fmt.Sprintf("not (%s)", BoolExprString(v.X))
	}
	return "<?>"
}
