package p4

// Clone returns a deep copy of the program. Optimization passes clone before
// rewriting so the original AST stays intact for comparison and reporting.
func Clone(p *Program) *Program {
	out := &Program{}
	for _, d := range p.Decls {
		// addDecl cannot fail here: names were unique in the source program.
		if err := out.addDecl(cloneDecl(d)); err != nil {
			panic("p4: clone produced duplicate declaration: " + err.Error())
		}
	}
	return out
}

func cloneDecl(d Decl) Decl {
	switch v := d.(type) {
	case *Tunable:
		cp := *v
		return &cp
	case *HeaderType:
		ht := &HeaderType{Name: v.Name}
		for _, f := range v.Fields {
			cp := *f
			ht.Fields = append(ht.Fields, &cp)
		}
		return ht
	case *Instance:
		cp := *v
		return &cp
	case *Register:
		cp := *v
		return &cp
	case *Counter:
		cp := *v
		return &cp
	case *FieldList:
		fl := &FieldList{Name: v.Name}
		fl.Fields = append(fl.Fields, v.Fields...)
		return fl
	case *FieldListCalc:
		cp := *v
		return &cp
	case *CalculatedField:
		cp := *v
		return &cp
	case *ParserState:
		ps := &ParserState{Name: v.Name}
		for _, s := range v.Statements {
			ps.Statements = append(ps.Statements, cloneParserStmt(s))
		}
		ps.Return = cloneParserReturn(v.Return)
		return ps
	case *ActionDecl:
		ad := &ActionDecl{Name: v.Name}
		ad.Params = append(ad.Params, v.Params...)
		for _, c := range v.Body {
			ad.Body = append(ad.Body, clonePrimitive(c))
		}
		return ad
	case *TableDecl:
		td := &TableDecl{
			Name:           v.Name,
			Size:           v.Size,
			DefaultAction:  v.DefaultAction,
			SupportTimeout: v.SupportTimeout,
		}
		for _, r := range v.Reads {
			cp := *r
			td.Reads = append(td.Reads, &cp)
		}
		td.ActionNames = append(td.ActionNames, v.ActionNames...)
		td.DefaultArgs = append(td.DefaultArgs, v.DefaultArgs...)
		return td
	case *ControlDecl:
		return &ControlDecl{Name: v.Name, Body: CloneBlock(v.Body)}
	}
	panic("p4: unknown declaration type in clone")
}

func cloneParserStmt(s ParserStmt) ParserStmt {
	switch v := s.(type) {
	case *ExtractStmt:
		cp := *v
		return &cp
	case *SetMetadataStmt:
		cp := *v
		return &cp
	}
	panic("p4: unknown parser statement in clone")
}

func cloneParserReturn(r ParserReturn) ParserReturn {
	switch v := r.(type) {
	case *ReturnState:
		cp := *v
		return &cp
	case *ReturnSelect:
		rs := &ReturnSelect{}
		rs.On = append(rs.On, v.On...)
		for _, c := range v.Cases {
			cp := *c
			rs.Cases = append(rs.Cases, &cp)
		}
		return rs
	}
	panic("p4: unknown parser return in clone")
}

func clonePrimitive(c *PrimitiveCall) *PrimitiveCall {
	out := &PrimitiveCall{Name: c.Name}
	out.Args = append(out.Args, c.Args...)
	return out
}

// CloneBlock deep-copies a statement block.
func CloneBlock(b *BlockStmt) *BlockStmt {
	if b == nil {
		return nil
	}
	out := &BlockStmt{}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, CloneStmt(s))
	}
	return out
}

// CloneStmt deep-copies a control statement.
func CloneStmt(s Stmt) Stmt {
	switch v := s.(type) {
	case *ApplyStmt:
		return &ApplyStmt{Table: v.Table, Hit: CloneBlock(v.Hit), Miss: CloneBlock(v.Miss)}
	case *IfStmt:
		return &IfStmt{Cond: cloneBool(v.Cond), Then: CloneBlock(v.Then), Else: CloneBlock(v.Else)}
	case *BlockStmt:
		return CloneBlock(v)
	}
	panic("p4: unknown statement in clone")
}

func cloneBool(e BoolExpr) BoolExpr {
	switch v := e.(type) {
	case *ValidExpr:
		cp := *v
		return &cp
	case *CompareExpr:
		cp := *v
		return &cp
	case *BinaryBoolExpr:
		return &BinaryBoolExpr{Op: v.Op, Left: cloneBool(v.Left), Right: cloneBool(v.Right)}
	case *NotExpr:
		return &NotExpr{X: cloneBool(v.X)}
	}
	panic("p4: unknown boolean expression in clone")
}

// WalkStmts invokes fn for every statement in the block, depth-first,
// including statements nested in hit/miss and if branches. Returning false
// from fn stops the walk.
func WalkStmts(b *BlockStmt, fn func(Stmt) bool) bool {
	if b == nil {
		return true
	}
	for _, s := range b.Stmts {
		if !fn(s) {
			return false
		}
		switch v := s.(type) {
		case *ApplyStmt:
			if !WalkStmts(v.Hit, fn) || !WalkStmts(v.Miss, fn) {
				return false
			}
		case *IfStmt:
			if !WalkStmts(v.Then, fn) || !WalkStmts(v.Else, fn) {
				return false
			}
		case *BlockStmt:
			if !WalkStmts(v, fn) {
				return false
			}
		}
	}
	return true
}

// TablesInBlock returns the names of all tables applied anywhere in the
// block, in source order (duplicates removed).
func TablesInBlock(b *BlockStmt) []string {
	var out []string
	seen := map[string]bool{}
	WalkStmts(b, func(s Stmt) bool {
		if ap, ok := s.(*ApplyStmt); ok && !seen[ap.Table] {
			seen[ap.Table] = true
			out = append(out, ap.Table)
		}
		return true
	})
	return out
}
