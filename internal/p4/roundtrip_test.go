package p4

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// genProgram builds a random but well-formed program: a metadata header, a
// register, a set of actions over random fields, tables with random reads
// and sizes, and a control tree with random nesting. Used to property-test
// the parse -> check -> print -> parse pipeline.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	nFields := 2 + rng.Intn(6)
	b.WriteString("header_type gen_t {\n    fields {\n")
	for i := 0; i < nFields; i++ {
		b.WriteString(fmt.Sprintf("        f%d : %d;\n", i, 1+rng.Intn(32)))
	}
	b.WriteString("    }\n}\nmetadata gen_t gm;\n")
	b.WriteString("register gr { width : 32; instance_count : 64; }\n")
	b.WriteString("counter gc { type : packets; instance_count : 32; }\n")
	b.WriteString("field_list gfl { gm.f0; }\n")
	b.WriteString("field_list_calculation gcalc { input { gfl; } algorithm : crc16; output_width : 6; }\n")

	field := func() string { return fmt.Sprintf("gm.f%d", rng.Intn(nFields)) }
	nActions := 1 + rng.Intn(5)
	for i := 0; i < nActions; i++ {
		b.WriteString(fmt.Sprintf("action ga%d(", i))
		nParams := rng.Intn(3)
		for p := 0; p < nParams; p++ {
			if p > 0 {
				b.WriteString(", ")
			}
			b.WriteString(fmt.Sprintf("p%d", p))
		}
		b.WriteString(") {\n")
		nPrims := 1 + rng.Intn(4)
		for j := 0; j < nPrims; j++ {
			switch rng.Intn(7) {
			case 0:
				b.WriteString(fmt.Sprintf("    modify_field(%s, %d);\n", field(), rng.Intn(100)))
			case 1:
				if nParams > 0 {
					b.WriteString(fmt.Sprintf("    modify_field(%s, p%d);\n", field(), rng.Intn(nParams)))
				} else {
					b.WriteString(fmt.Sprintf("    add_to_field(%s, 1);\n", field()))
				}
			case 2:
				b.WriteString(fmt.Sprintf("    subtract_from_field(%s, %d);\n", field(), rng.Intn(5)))
			case 3:
				b.WriteString(fmt.Sprintf("    min(%s, %s, %s);\n", field(), field(), field()))
			case 4:
				b.WriteString("    drop();\n")
			case 5:
				b.WriteString("    no_op();\n")
			case 6:
				b.WriteString(fmt.Sprintf("    bit_xor(%s, %s, %d);\n", field(), field(), rng.Intn(64)))
			}
		}
		b.WriteString("}\n")
	}

	nTables := 1 + rng.Intn(4)
	kinds := []string{"exact", "lpm", "ternary", "range"}
	for i := 0; i < nTables; i++ {
		b.WriteString(fmt.Sprintf("table gt%d {\n", i))
		if rng.Intn(3) > 0 {
			b.WriteString("    reads {\n")
			nReads := 1 + rng.Intn(2)
			for j := 0; j < nReads; j++ {
				b.WriteString(fmt.Sprintf("        %s : %s;\n", field(), kinds[rng.Intn(len(kinds))]))
			}
			b.WriteString("    }\n")
		}
		act := rng.Intn(nActions)
		b.WriteString(fmt.Sprintf("    actions {\n        ga%d;\n    }\n", act))
		if rng.Intn(2) == 0 {
			b.WriteString(fmt.Sprintf("    size : %d;\n", 1+rng.Intn(1024)))
		}
		b.WriteString("}\n")
	}

	// Control tree: apply every table exactly once with random nesting.
	b.WriteString("control ingress {\n")
	depth := 0
	for i := 0; i < nTables; i++ {
		switch rng.Intn(3) {
		case 0:
			if depth < 3 {
				b.WriteString(fmt.Sprintf("if (%s == %d) {\n", field(), rng.Intn(10)))
				depth++
			}
			b.WriteString(fmt.Sprintf("apply(gt%d);\n", i))
		case 1:
			b.WriteString(fmt.Sprintf("apply(gt%d);\n", i))
			if depth > 0 {
				b.WriteString("}\n")
				depth--
			}
		default:
			b.WriteString(fmt.Sprintf("apply(gt%d);\n", i))
		}
	}
	for ; depth > 0; depth-- {
		b.WriteString("}\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// TestRandomProgramRoundTrip: for many random programs, parse+check
// succeeds and print is a fixed point under reparsing.
func TestRandomProgramRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	for i := 0; i < 200; i++ {
		src := genProgram(rng)
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("program %d: parse: %v\n%s", i, err, src)
		}
		if err := Check(prog); err != nil {
			t.Fatalf("program %d: check: %v\n%s", i, err, src)
		}
		printed := Print(prog)
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("program %d: reparse: %v\n%s", i, err, printed)
		}
		if err := Check(prog2); err != nil {
			t.Fatalf("program %d: recheck: %v", i, err)
		}
		printed2 := Print(prog2)
		if printed != printed2 {
			t.Fatalf("program %d: print not a fixed point:\n--- a ---\n%s\n--- b ---\n%s", i, printed, printed2)
		}
		// Clone is faithful.
		if Print(Clone(prog)) != printed {
			t.Fatalf("program %d: clone print differs", i)
		}
	}
}
