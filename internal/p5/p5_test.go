package p5

import (
	"strings"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/tofino"
)

// ex1Features groups the Example 1 tables into the features a P5-style
// policy would speak about.
func ex1Features() map[string][]string {
	return map[string][]string{
		"routing":    {"IPv4"},
		"udp-acl":    {"ACL_UDP"},
		"dhcp-guard": {"ACL_DHCP"},
		"dns-limit":  {"Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop"},
	}
}

// TestP5AllFeaturesUsedSavesNothing pins the paper's comparison: when the
// operator needs every feature (the Ex. 1 situation), P5 cannot shorten
// the pipeline at all — while P2GO takes the same program from 8 to 3
// stages by profiling.
func TestP5AllFeaturesUsedSavesNothing(t *testing.T) {
	policy := NewPolicy(ex1Features())
	res, err := Optimize(p4.MustParse(programs.Ex1), policy, tofino.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesBefore != 8 {
		t.Errorf("stages before = %d, want 8", res.StagesBefore)
	}
	if res.StagesAfter != res.StagesBefore {
		t.Errorf("P5 with all features used: %d -> %d, want no change", res.StagesBefore, res.StagesAfter)
	}
	if len(res.RemovedTables) != 0 {
		t.Errorf("removed = %v, want none", res.RemovedTables)
	}
}

// TestP5RemovesUnusedFeature: when the policy declares the DNS limiter
// unused, P5 deactivates the whole block — the coarse-grained case it does
// handle.
func TestP5RemovesUnusedFeature(t *testing.T) {
	policy := NewPolicy(ex1Features())
	if err := policy.SetUsed("dns-limit", false); err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p4.MustParse(programs.Ex1), policy, tofino.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesAfter >= res.StagesBefore {
		t.Errorf("stages %d -> %d, want a reduction", res.StagesBefore, res.StagesAfter)
	}
	// The DNS tables and the guarding condition are gone.
	for _, tbl := range []string{"Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop"} {
		if res.Optimized.Table(tbl) != nil {
			t.Errorf("table %s should have been removed", tbl)
		}
	}
	src := p4.Print(res.Optimized)
	reparsed, err := p4.Parse(src)
	if err != nil {
		t.Fatalf("optimized program does not reparse: %v\n%s", err, src)
	}
	if err := p4.Check(reparsed); err != nil {
		t.Fatalf("optimized program does not recheck: %v", err)
	}
	// Removing the whole branch frees the four DNS stages: 8 -> 4.
	if res.StagesAfter != 4 {
		t.Errorf("stages after = %d, want 4", res.StagesAfter)
	}
}

// TestP5CannotRemoveManifestFreeDependency: deactivating nothing leaves the
// ACL dependency in place — P5 has no mechanism to reorder or predicate
// tables, which is exactly P2GO's Phase 2 advantage.
func TestP5CannotRemoveManifestFreeDependency(t *testing.T) {
	policy := NewPolicy(map[string][]string{
		"nat": {"nat"},
		"gre": {"gre"},
		"fwd": {"ipv4_fwd", "egress_acl"},
	})
	res, err := Optimize(p4.MustParse(programs.NATGRE), policy, tofino.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesAfter != 4 {
		t.Errorf("P5 on NAT&GRE: %d stages, want 4 (cannot remove the dependency)", res.StagesAfter)
	}
}

func TestPolicyUnknownFeature(t *testing.T) {
	policy := NewPolicy(ex1Features())
	if err := policy.SetUsed("nonexistent", false); err == nil {
		t.Error("expected error for unknown feature")
	}
}

// TestP5GuardedBlockRemoval: deactivating a feature nested under an if
// removes the now-empty condition too.
func TestP5GuardedBlockRemoval(t *testing.T) {
	policy := NewPolicy(ex1Features())
	if err := policy.SetUsed("dns-limit", false); err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p4.MustParse(programs.Ex1), policy, tofino.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	src := p4.Print(res.Optimized)
	if strings.Contains(src, "valid(dns)") {
		t.Errorf("empty valid(dns) guard should have been removed:\n%s", src)
	}
}
