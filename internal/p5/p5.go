// Package p5 implements a baseline in the spirit of P5 (Abhashkumar et
// al., SOSR '17), the closest prior work the paper compares against: a
// policy-driven optimizer that deactivates entire feature blocks the
// operator's high-level policy declares unused, without any profiling.
//
// The contrast with P2GO (§1, §2.2, §5):
//
//   - P5 needs high-level policies as input; it cannot *discover* that a
//     dependency never manifests (it "would not be able to remove such a
//     dependency as an operator might need both ACLs");
//   - P5 deactivates whole code blocks; it cannot make
//     implementation-level changes such as resizing a register by 8.4%;
//   - P5 never removes code that the policy says is used, even when
//     profiling shows it is almost never exercised ("P5 would not remove
//     this segment as it is used").
package p5

import (
	"fmt"
	"sort"

	"p2go/internal/p4"
	"p2go/internal/tofino"
)

// Policy declares which features the operator needs. A feature is a named
// group of tables.
type Policy struct {
	// Features maps feature name -> tables implementing it.
	Features map[string][]string
	// Used lists the features the operator's policy requires.
	Used map[string]bool
}

// NewPolicy builds a policy where every listed feature is used.
func NewPolicy(features map[string][]string) *Policy {
	used := map[string]bool{}
	for f := range features {
		used[f] = true
	}
	return &Policy{Features: features, Used: used}
}

// SetUsed toggles a feature.
func (p *Policy) SetUsed(feature string, used bool) error {
	if _, ok := p.Features[feature]; !ok {
		return fmt.Errorf("p5: unknown feature %q", feature)
	}
	p.Used[feature] = used
	return nil
}

// unusedTables returns the tables of all unused features, sorted.
func (p *Policy) unusedTables() map[string]bool {
	out := map[string]bool{}
	for f, tables := range p.Features {
		if p.Used[f] {
			continue
		}
		for _, t := range tables {
			out[t] = true
		}
	}
	return out
}

// Result reports a P5 optimization run.
type Result struct {
	Optimized     *p4.Program
	StagesBefore  int
	StagesAfter   int
	RemovedTables []string
}

// Optimize deactivates the unused features' tables: their apply statements
// are removed from the control flow (with any statements they guard) and
// unreachable declarations are pruned, then the program is recompiled.
func Optimize(ast *p4.Program, policy *Policy, tgt tofino.Target) (*Result, error) {
	before, err := tofino.Compile(p4.Clone(ast), tgt)
	if err != nil {
		return nil, fmt.Errorf("p5: %w", err)
	}
	optimized := p4.Clone(ast)
	unused := policy.unusedTables()
	for _, c := range optimized.Controls {
		c.Body = removeApplies(c.Body, unused)
	}
	prune(optimized)

	after, err := tofino.Compile(p4.Clone(optimized), tgt)
	if err != nil {
		return nil, fmt.Errorf("p5: optimized program: %w", err)
	}
	var removed []string
	for t := range unused {
		removed = append(removed, t)
	}
	sort.Strings(removed)
	return &Result{
		Optimized:     optimized,
		StagesBefore:  before.Mapping.StagesUsed,
		StagesAfter:   after.Mapping.StagesUsed,
		RemovedTables: removed,
	}, nil
}

// removeApplies strips apply statements of deactivated tables. An apply's
// hit/miss arms are dropped with it (they are unreachable without the
// match); if/else structure is preserved.
func removeApplies(b *p4.BlockStmt, unused map[string]bool) *p4.BlockStmt {
	if b == nil {
		return nil
	}
	out := &p4.BlockStmt{}
	for _, s := range b.Stmts {
		switch v := s.(type) {
		case *p4.ApplyStmt:
			if unused[v.Table] {
				continue
			}
			out.Stmts = append(out.Stmts, &p4.ApplyStmt{
				Table: v.Table,
				Hit:   removeApplies(v.Hit, unused),
				Miss:  removeApplies(v.Miss, unused),
			})
		case *p4.IfStmt:
			then := removeApplies(v.Then, unused)
			els := removeApplies(v.Else, unused)
			if emptyBlock(then) && emptyBlock(els) {
				continue // nothing left under this condition
			}
			out.Stmts = append(out.Stmts, &p4.IfStmt{Cond: v.Cond, Then: then, Else: els})
		case *p4.BlockStmt:
			inner := removeApplies(v, unused)
			if !emptyBlock(inner) {
				out.Stmts = append(out.Stmts, inner)
			}
		}
	}
	return out
}

func emptyBlock(b *p4.BlockStmt) bool { return b == nil || len(b.Stmts) == 0 }

// prune drops declarations unreachable from the control flow, mirroring
// the cleanup P2GO's offload performs.
func prune(ast *p4.Program) {
	applied := map[string]bool{}
	for _, c := range ast.Controls {
		for _, t := range p4.TablesInBlock(c.Body) {
			applied[t] = true
		}
	}
	var tables []*p4.TableDecl
	for _, t := range ast.Tables {
		if applied[t.Name] {
			tables = append(tables, t)
		}
	}
	ast.Tables = tables
	var decls []p4.Decl
	for _, d := range ast.Decls {
		if t, ok := d.(*p4.TableDecl); ok && !applied[t.Name] {
			continue
		}
		decls = append(decls, d)
	}
	ast.Decls = decls
}
