package trafficgen

import (
	"fmt"
	"math/rand"

	"p2go/internal/packet"
	"p2go/internal/programs"
)

// NATGRESpec parameterizes the NAT & GRE workload.
type NATGRESpec struct {
	Total int // 0 means 10000
	Seed  int64
	// NATShare and GREShare are the fractions of traffic using each
	// feature. No packet uses both — that is the profile observation
	// Phase 2 exploits.
	NATShare float64
	GREShare float64
}

// NATGRETrace generates traffic where NATted destinations and GRE-tunneled
// destinations are disjoint flows.
func NATGRETrace(spec NATGRESpec) *Trace {
	total := spec.Total
	if total == 0 {
		total = 10000
	}
	if spec.NATShare == 0 {
		spec.NATShare = 0.30
	}
	if spec.GREShare == 0 {
		spec.GREShare = 0.20
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	natDsts := []uint32{packet.IP(198, 51, 100, 10), packet.IP(198, 51, 100, 11)}
	greDsts := []uint32{packet.IP(10, 5, 0, 1), packet.IP(10, 5, 0, 2)}
	out := &Trace{}
	for i := 0; i < total; i++ {
		var dst uint32
		r := rng.Float64()
		switch {
		case r < spec.NATShare:
			dst = natDsts[rng.Intn(len(natDsts))]
		case r < spec.NATShare+spec.GREShare:
			dst = greDsts[rng.Intn(len(greDsts))]
		default:
			dst = packet.IP(10, 7, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
		}
		out.Packets = append(out.Packets, Packet{
			Port: 1,
			Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoTCP, Src: packet.IP(10, 6, byte(rng.Intn(256)), byte(1+rng.Intn(254))), Dst: dst},
				&packet.TCP{SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 443, Seq: rng.Uint32(), Flags: packet.TCPAck},
			),
		})
	}
	return out
}

// SourceguardSpec parameterizes the Sourceguard workload.
type SourceguardSpec struct {
	Total   int // 0 means 10000
	Seed    int64
	Clients int // learned clients; 0 means 40
	// ViolationShare is the fraction of traffic from unlearned sources.
	ViolationShare float64
}

// SourceguardTrace generates DHCP announcements for the learned clients
// first (populating the Bloom filter), then a mix of legitimate traffic,
// spoofed-source violations, and a few packets on the quarantined ingress
// ports — including one from a learned source and one from an unlearned
// source, so the ACL dependencies manifest in the profile.
func SourceguardTrace(spec SourceguardSpec) *Trace {
	total := spec.Total
	if total == 0 {
		total = 10000
	}
	clients := spec.Clients
	if clients == 0 {
		clients = 40
	}
	if spec.ViolationShare == 0 {
		spec.ViolationShare = 0.02
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	learned := make([]uint32, clients)
	for i := range learned {
		learned[i] = packet.IP(10, 4, byte(i/250), byte(1+i%250))
	}
	out := &Trace{}
	// DHCP announcements populate the snooping database.
	for _, src := range learned {
		out.Packets = append(out.Packets, Packet{
			Port: 1,
			Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoUDP, Src: src, Dst: packet.IP(10, 255, 255, 255)},
				&packet.UDP{SrcPort: packet.PortDHCPClient, DstPort: packet.PortDHCPServer},
				&packet.DHCP{Op: 1, HType: 1, HLen: 6, XID: rng.Uint32()},
			),
		})
	}
	// Two quarantined-port packets so the ingress ACL's dependencies with
	// both the forwarding table and the violation drop manifest.
	out.Packets = append(out.Packets,
		Packet{Port: 30, Data: sgDataPacket(learned[0], rng)},
		Packet{Port: 31, Data: sgDataPacket(packet.IP(172, 16, 66, 66), rng)},
	)
	for len(out.Packets) < total {
		var src uint32
		if rng.Float64() < spec.ViolationShare {
			src = packet.IP(10, 66, byte(rng.Intn(256)), byte(1+rng.Intn(254))) // spoofed
		} else {
			src = learned[rng.Intn(len(learned))]
		}
		out.Packets = append(out.Packets, Packet{Port: 1, Data: sgDataPacket(src, rng)})
	}
	return out
}

func sgDataPacket(src uint32, rng *rand.Rand) []byte {
	return packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoTCP, Src: src, Dst: packet.IP(10, 1, byte(rng.Intn(256)), byte(1+rng.Intn(254)))},
		&packet.TCP{SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 80, Seq: rng.Uint32(), Flags: packet.TCPAck},
	)
}

// FailureSpec parameterizes the failure-detection workload.
type FailureSpec struct {
	Total int // 0 means 20000
	Seed  int64
	// BackgroundRetrans is the fraction of ordinary flows that
	// retransmit one packet.
	BackgroundRetrans float64
	// FailureBurst is the number of retransmissions hitting the failed
	// prefix; it must exceed programs.FailureAlarmThreshold for the
	// alarm to fire.
	FailureBurst int
}

// FailureTrace generates TCP traffic with sparse background
// retransmissions plus one failure event: FailureBurst distinct flows
// towards a single destination each retransmit one packet, driving the
// per-destination Count-Min Sketch past the alarm threshold.
func FailureTrace(spec FailureSpec) *Trace {
	total := spec.Total
	if total == 0 {
		total = 20000
	}
	if spec.BackgroundRetrans == 0 {
		spec.BackgroundRetrans = 0.01
	}
	if spec.FailureBurst == 0 {
		spec.FailureBurst = programs.FailureAlarmThreshold + 8
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	failedDst := packet.IP(198, 51, 100, 7)
	out := &Trace{}
	mkPkt := func(src, dst uint32, sport uint16, seq uint32) []byte {
		return packet.Serialize(
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{Protocol: packet.ProtoTCP, Src: src, Dst: dst},
			&packet.TCP{SrcPort: sport, DstPort: 443, Seq: seq, Flags: packet.TCPAck},
		)
	}
	// Background traffic first; the failure burst goes in the middle.
	half := total / 2
	emitBackground := func(n int) {
		for i := 0; i < n && len(out.Packets) < total; i++ {
			src := packet.IP(10, 30, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
			dst := packet.IP(10, 40, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
			sport := uint16(1024 + rng.Intn(60000))
			seq := rng.Uint32()
			data := mkPkt(src, dst, sport, seq)
			out.Packets = append(out.Packets, Packet{Port: 1, Data: data})
			if rng.Float64() < spec.BackgroundRetrans && len(out.Packets) < total {
				out.Packets = append(out.Packets, Packet{Port: 1, Data: mkPkt(src, dst, sport, seq)})
			}
		}
	}
	emitBackground(half)
	// Failure event: distinct flows to the failed prefix retransmit.
	for i := 0; i < spec.FailureBurst && len(out.Packets)+1 < total; i++ {
		src := packet.IP(10, 31, byte(i/200), byte(1+i%200))
		sport := uint16(2000 + i)
		seq := uint32(1000 + i)
		out.Packets = append(out.Packets,
			Packet{Port: 1, Data: mkPkt(src, failedDst, sport, seq)},
			Packet{Port: 1, Data: mkPkt(src, failedDst, sport, seq)}, // retransmission
		)
	}
	emitBackground(total - len(out.Packets))
	return out
}

// L2L3ACLSpec parameterizes the phase-ordering workload.
type L2L3ACLSpec struct {
	Total int // 0 means 4000
	Seed  int64
	// UDPPeriod makes every UDPPeriod-th packet UDP (the rarely used ACL
	// path); 0 means 20, i.e. a 5% redirect fraction when the ACLs are
	// offloaded. Of the UDP packets, one in ten hits ACL1's blocked
	// destination port and one in ten hits ACL2's blocked source port —
	// never both on the same packet, so the ACL1→ACL2 dependency never
	// manifests.
	UDPPeriod int
}

// L2L3ACLTrace generates mostly-TCP routed traffic with a thin UDP slice
// whose ACL1 and ACL2 violations are disjoint. Destinations alternate
// between the two installed routes so both Flow_Count entries stay hot.
func L2L3ACLTrace(spec L2L3ACLSpec) *Trace {
	total := spec.Total
	if total == 0 {
		total = 4000
	}
	period := spec.UDPPeriod
	if period == 0 {
		period = 20
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	out := &Trace{}
	for i := 0; i < total; i++ {
		// Every 4th destination takes the 10.2/16 pod route (next hop 2);
		// the rest take the 10/8 default (next hop 1).
		dst := packet.IP(10, 0, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
		if i%4 == 1 {
			dst = packet.IP(10, 2, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
		}
		src := packet.IP(10, 8, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
		if i%period == period-1 {
			// UDP slot. Benign ports stay clear of both blocked ports
			// (10000+ source, 9000 destination) so only the designated
			// slots ever hit an ACL.
			sport := uint16(10000 + rng.Intn(50000))
			dport := uint16(9000)
			switch (i / period) % 10 {
			case 0:
				dport = programs.L2L3ACLBlockedDstPort // ACL1 drop
			case 1:
				sport = programs.L2L3ACLBlockedSrcPort // ACL2 drop
			}
			out.Packets = append(out.Packets, Packet{
				Port: 1,
				Data: packet.Serialize(
					&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
					&packet.IPv4{Protocol: packet.ProtoUDP, Src: src, Dst: dst},
					&packet.UDP{SrcPort: sport, DstPort: dport},
				),
			})
			continue
		}
		out.Packets = append(out.Packets, Packet{
			Port: 1,
			Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoTCP, Src: src, Dst: dst},
				&packet.TCP{SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 443, Seq: rng.Uint32(), Flags: packet.TCPAck},
			),
		})
	}
	return out
}

// StressTrace exercises the does-not-fit ACL chain: every packet matches at
// most one ACL table.
func StressTrace(total int, seed int64) *Trace {
	if total == 0 {
		total = 5000
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Trace{}
	for i := 0; i < total; i++ {
		var dport uint16
		if rng.Float64() < 0.5 {
			// Blocked by exactly one of the chained ACLs.
			dport = uint16(7000 + 1 + rng.Intn(programs.StressChainLength))
		} else {
			dport = uint16(20000 + rng.Intn(1000))
		}
		out.Packets = append(out.Packets, Packet{
			Port: 1,
			Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoUDP, Src: packet.IP(10, 50, 0, byte(1+rng.Intn(254))), Dst: packet.IP(10, 51, 0, byte(1+rng.Intn(254)))},
				&packet.UDP{SrcPort: 5000, DstPort: dport},
				packet.Raw("stress"),
			),
		})
	}
	return out
}

// QuickstartTrace drives the quickstart router: routed, unrouted, and
// blocked-port packets.
func QuickstartTrace(total int, seed int64) *Trace {
	if total == 0 {
		total = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Trace{}
	for i := 0; i < total; i++ {
		port := uint64(1)
		dst := packet.IP(10, 1, 2, byte(1+rng.Intn(254)))
		switch i % 10 {
		case 7:
			dst = packet.IP(192, 168, 3, byte(1+rng.Intn(254)))
		case 8:
			dst = packet.IP(8, 8, 8, 8) // unrouted
		case 9:
			port = 4 // blocked ingress port
		}
		out.Packets = append(out.Packets, Packet{
			Port: port,
			Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoTCP, Src: packet.IP(10, 9, 9, byte(1+rng.Intn(254))), Dst: dst, TTL: 64},
				&packet.TCP{SrcPort: uint16(1024 + i), DstPort: 80, Seq: uint32(i), Flags: packet.TCPAck},
			),
		})
	}
	return out
}

// Describe summarizes a trace for logs.
func (t *Trace) Describe() string {
	return fmt.Sprintf("%d packets", len(t.Packets))
}

// MaglevSpec parameterizes the Maglev load-balancer workload.
type MaglevSpec struct {
	Seed int64
	// Flows is the number of distinct VIP connections; 0 means 600. With
	// the default connection table the flows index nearly collision-free;
	// shrinking conn_cells makes birthday collisions (and maglev_rehash
	// hits) grow quadratically in this count.
	Flows int
	// Rounds is the number of packets per connection; 0 means 5. The
	// rounds are interleaved across connections, so two colliding flows
	// keep evicting each other's connection-table slot.
	Rounds int
	// Background is the number of non-VIP routed packets; 0 means 2000.
	Background int
}

// MaglevTrace generates interleaved VIP connections plus routed
// background traffic. Each connection is a distinct (srcAddr, srcPort)
// pair sending Rounds packets to the VIP; packets are emitted round-robin
// across connections so connection-table collisions manifest as repeated
// evictions rather than a single overwrite.
func MaglevTrace(spec MaglevSpec) *Trace {
	flows := spec.Flows
	if flows == 0 {
		flows = 600
	}
	rounds := spec.Rounds
	if rounds == 0 {
		rounds = 5
	}
	background := spec.Background
	if background == 0 {
		background = 2000
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	vip := packet.IP(203, 0, 113, 100)
	type flow struct {
		src   uint32
		sport uint16
	}
	// Random (src, sport) pairs: consecutive addressing would correlate
	// under the linear CRC index hash and distort the collision curve.
	fl := make([]flow, flows)
	for i := range fl {
		fl[i] = flow{
			src:   packet.IP(10, 60, byte(rng.Intn(256)), byte(1+rng.Intn(254))),
			sport: uint16(1024 + rng.Intn(60000)),
		}
	}
	out := &Trace{}
	bgPer := background / rounds
	emitBackground := func(n int) {
		for i := 0; i < n; i++ {
			out.Packets = append(out.Packets, Packet{
				Port: 1,
				Data: packet.Serialize(
					&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
					&packet.IPv4{Protocol: packet.ProtoTCP, Src: packet.IP(10, 61, byte(rng.Intn(256)), byte(1+rng.Intn(254))), Dst: packet.IP(10, 62, byte(rng.Intn(256)), byte(1+rng.Intn(254)))},
					&packet.TCP{SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 443, Seq: rng.Uint32(), Flags: packet.TCPAck},
				),
			})
		}
	}
	for r := 0; r < rounds; r++ {
		for _, f := range fl {
			out.Packets = append(out.Packets, Packet{
				Port: 1,
				Data: packet.Serialize(
					&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
					&packet.IPv4{Protocol: packet.ProtoTCP, Src: f.src, Dst: vip},
					&packet.TCP{SrcPort: f.sport, DstPort: 80, Seq: uint32(r), Flags: packet.TCPAck},
				),
			})
		}
		emitBackground(bgPer)
	}
	emitBackground(background - bgPer*rounds)
	return out
}

// SynCookieSpec parameterizes the SYN-cookie mitigation workload.
type SynCookieSpec struct {
	Seed int64
	// Clients is the number of legitimate clients; 0 means 300. Each
	// sends one SYN followed by AcksPerClient ACKs.
	Clients int
	// AcksPerClient is the post-handshake packet count; 0 means 3.
	AcksPerClient int
	// AttackSyns is the SYN-flood volume (spoofed, never completing a
	// handshake); 0 means 4000.
	AttackSyns int
	// AttackAcks is the ACK-flood volume, one packet per distinct spoofed
	// source; 0 means 2500. These are what pollute the proven-clients
	// filter and drive its false-positive rate at small sizes.
	AttackAcks int
}

// SynCookieTrace generates the mitigation mix: legitimate handshakes, a
// spoofed SYN flood, and a distinct-source ACK flood, shuffled
// deterministically. Every distinct non-SYN source's first packet should
// hit cookie_check; Bloom false positives at reduced filter sizes erode
// exactly that count.
func SynCookieTrace(spec SynCookieSpec) *Trace {
	clients := spec.Clients
	if clients == 0 {
		clients = 300
	}
	acks := spec.AcksPerClient
	if acks == 0 {
		acks = 3
	}
	attackSyns := spec.AttackSyns
	if attackSyns == 0 {
		attackSyns = 4000
	}
	attackAcks := spec.AttackAcks
	if attackAcks == 0 {
		attackAcks = 2500
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	service := packet.IP(10, 0, 0, 5)
	mkPkt := func(src uint32, sport uint16, flags uint8) Packet {
		return Packet{
			Port: 1,
			Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoTCP, Src: src, Dst: service},
				&packet.TCP{SrcPort: sport, DstPort: 443, Seq: rng.Uint32(), Flags: flags},
			),
		}
	}
	var pkts []Packet
	for i := 0; i < clients; i++ {
		src := packet.IP(10, 20, byte(i/250), byte(1+i%250))
		pkts = append(pkts, mkPkt(src, uint16(1024+i), packet.TCPSyn))
		for a := 0; a < acks; a++ {
			pkts = append(pkts, mkPkt(src, uint16(1024+i), packet.TCPAck))
		}
	}
	for i := 0; i < attackSyns; i++ {
		src := packet.IP(198, 18, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
		pkts = append(pkts, mkPkt(src, uint16(rng.Intn(65535)+1), packet.TCPSyn))
	}
	// Random attack sources (a few repeats are harmless): consecutive
	// addresses would correlate under the linear CRC filter hash and
	// suppress the false-positive curve the knob is supposed to expose.
	for i := 0; i < attackAcks; i++ {
		src := packet.IP(198, 19, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
		pkts = append(pkts, mkPkt(src, uint16(2000+i), packet.TCPAck))
	}
	rng.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
	return &Trace{Packets: pkts}
}

// ZipfSpec parameterizes the Zipf flow-popularity trace: a generic TCP
// mix whose flows follow a Zipf law, the realistic heavy-tailed shape
// where a handful of elephant flows carry most packets.
type ZipfSpec struct {
	Total int // 0 means 20000
	Seed  int64
	// Flows is the distinct flow count; 0 means 1024.
	Flows int
	// Skew is the Zipf s parameter (must be > 1); 0 means 1.2. Higher
	// skew concentrates more of the trace on the top flows.
	Skew float64
}

// ZipfTCPTrace draws Total packets from Flows distinct TCP flows with
// Zipf-distributed popularity. Packets of one flow are byte-identical, so
// the replay engine's flow deduplication collapses the trace to at most
// Flows representatives — the benchmark rows built on this trace measure
// exactly that effect.
func ZipfTCPTrace(spec ZipfSpec) *Trace {
	total := spec.Total
	if total == 0 {
		total = 20000
	}
	flows := spec.Flows
	if flows == 0 {
		flows = 1024
	}
	skew := spec.Skew
	if skew == 0 {
		skew = 1.2
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := rand.NewZipf(rng, skew, 1, uint64(flows-1))
	data := make([][]byte, flows)
	for i := range data {
		data[i] = packet.Serialize(
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{Protocol: packet.ProtoTCP, Src: packet.IP(10, 70, byte(i/250), byte(1+i%250)), Dst: packet.IP(10, 1, 2, byte(1+i%250)), TTL: 64},
			&packet.TCP{SrcPort: uint16(1024 + i), DstPort: 443, Seq: uint32(i), Flags: packet.TCPAck},
		)
	}
	out := &Trace{}
	for i := 0; i < total; i++ {
		out.Packets = append(out.Packets, Packet{Port: 1, Data: data[zipf.Uint64()]})
	}
	return out
}
