// Package trafficgen crafts the deterministic traffic traces the
// experiments profile with — our stand-in for the Scapy-based trace
// generation in the paper. Every generator is seeded and calibrated so the
// resulting profile matches the rates the paper reports (Ex. 1: IPv4 100%,
// ACL_UDP 8%, ACL_DHCP 14%, Sketch_* 2%, DNS_Drop 1%).
package trafficgen

import (
	"fmt"
	"math/rand"

	"p2go/internal/hashes"
	"p2go/internal/packet"
	"p2go/internal/pcap"
	"p2go/internal/programs"
)

// Packet is one trace entry: the ingress port and the raw frame.
type Packet struct {
	Port uint64
	Data []byte
}

// Trace is an ordered packet sequence.
type Trace struct {
	Packets []Packet
}

// Records converts the trace to pcap records (ports are not representable
// in classic pcap; persist them separately if they matter).
func (t *Trace) Records() []pcap.Record {
	out := make([]pcap.Record, len(t.Packets))
	for i, p := range t.Packets {
		out[i] = pcap.Record{TimestampSec: uint32(i / 1000), TimestampFrac: uint32(i % 1000), Data: p.Data}
	}
	return out
}

// FromRecords builds a trace from pcap records, assigning every packet the
// given ingress port.
func FromRecords(recs []pcap.Record, port uint64) *Trace {
	t := &Trace{}
	for _, r := range recs {
		t.Packets = append(t.Packets, Packet{Port: port, Data: r.Data})
	}
	return t
}

// EnterpriseSpec parameterizes the Ex. 1 workload.
type EnterpriseSpec struct {
	Total int   // total packets; 0 means 20000
	Seed  int64 // rng seed for flow/address jitter

	// ReducedSketchCells is the Sketch_1 row size Phase 3's binary search
	// will land on; the generator engineers a flow that collides with the
	// heavy DNS flow at this modulus (but not at the original size), so
	// the reduced program over-counts and the profile check trips.
	// 0 means programs.Ex1ReducedSketchCells.
	ReducedSketchCells int
}

// Enterprise traffic shares (fractions of the total).
const (
	enterpriseBlockedUDPShare = 0.08 // ACL_UDP hit rate
	enterpriseDHCPShare       = 0.14 // ACL_DHCP hit rate
	enterpriseDNSShare        = 0.02 // Sketch_* hit rate
)

// DNS sub-mix for the default 20k-packet trace: the heavy flow crosses the
// 128-query threshold and produces exactly 1% DNS_Drop hits; the engineered
// flow only trips after Sketch_1 shrinks; the rest are clean light flows.
const (
	dnsHeavyCount      = programs.Ex1DNSThreshold - 1 + 200 // 327: packets 128..327 drop (200 = 1%)
	dnsEngineeredCount = 40
)

// Heavy and engineered DNS flow addressing. The identity hash h1 takes the
// low 16 bits of ipv4.srcAddr, so the engineered flow's srcAddr differs
// from the heavy flow's by exactly ReducedSketchCells in those bits: the
// two flows share a Sketch_1 cell only at the reduced row size.
var (
	dnsHeavySrcLow16 = uint32(1000)
	dnsServer        = packet.IP(10, 0, 0, 53)
)

// EnterpriseTrace generates the calibrated Ex. 1 mix. It fails only if the
// engineered CRC collision cannot be found in the enterprise address space
// (which would indicate a hash implementation change).
func EnterpriseTrace(spec EnterpriseSpec) (*Trace, error) {
	total := spec.Total
	if total == 0 {
		total = 20000
	}
	reduced := spec.ReducedSketchCells
	if reduced == 0 {
		reduced = programs.Ex1ReducedSketchCells
	}
	if total < 2000 {
		return nil, fmt.Errorf("trafficgen: enterprise trace needs at least 2000 packets, got %d", total)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	nBlocked := int(float64(total) * enterpriseBlockedUDPShare)
	nDHCP := int(float64(total) * enterpriseDHCPShare)
	nDNS := int(float64(total) * enterpriseDNSShare)
	if nDNS < dnsHeavyCount+dnsEngineeredCount+8 {
		return nil, fmt.Errorf("trafficgen: DNS share too small (%d packets) for the calibrated sub-mix", nDNS)
	}

	heavySrc := packet.IP(10, 9, 0, 0) | dnsHeavySrcLow16
	engSrcLow := dnsHeavySrcLow16 + uint32(reduced)
	if engSrcLow >= 1<<16 {
		return nil, fmt.Errorf("trafficgen: reduced cell count %d leaves no room in the 16-bit hash space", reduced)
	}
	engSrc := packet.IP(10, 9, 0, 0) | engSrcLow
	engDst, err := findCRCCollision(heavySrc, dnsServer, engSrc, programs.Ex1SketchCells)
	if err != nil {
		return nil, err
	}

	// Build the DNS sub-sequence: heavy flow first, then the engineered
	// flow (so its packets see the heavy flow's inflated cells), then
	// clean light flows.
	var dns []Packet
	for i := 0; i < dnsHeavyCount; i++ {
		dns = append(dns, Packet{Port: programs.TrustedPort, Data: dnsQuery(heavySrc, dnsServer, uint16(i))})
	}
	for i := 0; i < dnsEngineeredCount; i++ {
		dns = append(dns, Packet{Port: programs.TrustedPort, Data: dnsQuery(engSrc, engDst, uint16(i))})
	}
	for i := 0; len(dns) < nDNS; i++ {
		// Distinct low-16 srcAddr bits per clean flow, avoiding the
		// heavy and engineered cells at both row sizes.
		low := uint32(5000 + (i/4)*3)
		src := packet.IP(10, 8, 0, 0) | low
		dns = append(dns, Packet{Port: programs.TrustedPort, Data: dnsQuery(src, dnsServer, uint16(i))})
	}

	// Interleave: spread the DNS packets evenly (in order), and schedule
	// the blocked-UDP and DHCP shares across the remaining slots with
	// Bresenham accumulators, so the mix is stationary — every profiling
	// window of the trace sees the same rates (a property the online
	// monitor's drift detection relies on).
	out := &Trace{}
	mkBlocked := func() Packet {
		port := programs.Ex1BlockedUDPPorts[rng.Intn(len(programs.Ex1BlockedUDPPorts))]
		return Packet{
			Port: programs.TrustedPort,
			Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoUDP, Src: randClient(rng), Dst: randServer(rng)},
				&packet.UDP{SrcPort: uint16(20000 + rng.Intn(20000)), DstPort: uint16(port)},
				packet.Raw("blocked"),
			),
		}
	}
	mkDHCP := func() Packet {
		return Packet{
			Port: programs.UntrustedPort,
			Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoUDP, Src: randClient(rng), Dst: packet.IP(10, 255, 255, 255)},
				&packet.UDP{SrcPort: packet.PortDHCPClient, DstPort: packet.PortDHCPServer},
				&packet.DHCP{Op: 1, HType: 1, HLen: 6, XID: rng.Uint32()},
			),
		}
	}
	mkTCP := func() Packet {
		return Packet{
			Port: programs.TrustedPort,
			Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoTCP, Src: randClient(rng), Dst: randServer(rng)},
				&packet.TCP{SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 443,
					Seq: rng.Uint32(), Flags: packet.TCPAck},
			),
		}
	}
	dnsEvery := total / nDNS
	nonDNS := total - nDNS
	dnsIdx, blockedLeft, dhcpLeft := 0, nBlocked, nDHCP
	accB, accD := 0, 0
	for i := 0; i < total; i++ {
		if dnsIdx < len(dns) && i%dnsEvery == dnsEvery-1 {
			out.Packets = append(out.Packets, dns[dnsIdx])
			dnsIdx++
			continue
		}
		accB += nBlocked
		if accB >= nonDNS && blockedLeft > 0 {
			accB -= nonDNS
			blockedLeft--
			out.Packets = append(out.Packets, mkBlocked())
			continue
		}
		accD += nDHCP
		if accD >= nonDNS && dhcpLeft > 0 {
			accD -= nonDNS
			dhcpLeft--
			out.Packets = append(out.Packets, mkDHCP())
			continue
		}
		out.Packets = append(out.Packets, mkTCP())
	}
	// Exact-rate fixups: swap trailing TCP fillers for any unscheduled
	// blocked/DHCP/DNS packets (at most a handful when accumulators and
	// DNS slots collide near the end).
	for i := len(out.Packets) - 1; i >= 0 && blockedLeft+dhcpLeft+(len(dns)-dnsIdx) > 0; i-- {
		v, err := packet.Decode(out.Packets[i].Data)
		if err != nil || v.TCP == nil {
			continue
		}
		switch {
		case dnsIdx < len(dns):
			out.Packets[i] = dns[dnsIdx]
			dnsIdx++
		case blockedLeft > 0:
			blockedLeft--
			out.Packets[i] = mkBlocked()
		case dhcpLeft > 0:
			dhcpLeft--
			out.Packets[i] = mkDHCP()
		}
	}
	return out, nil
}

// ExpectedEnterpriseDNSDrops returns how many DNS_Drop hits the calibrated
// trace produces on the original program (the heavy flow's packets past the
// threshold).
func ExpectedEnterpriseDNSDrops() int { return dnsHeavyCount - (programs.Ex1DNSThreshold - 1) }

// dnsQuery builds one DNS query packet.
func dnsQuery(src, dst uint32, id uint16) []byte {
	return packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoUDP, Src: src, Dst: dst},
		&packet.UDP{SrcPort: 5353, DstPort: packet.PortDNS},
		&packet.DNS{ID: id, QDCount: 1},
	)
}

// randClient picks an enterprise client address outside the DNS flow space.
func randClient(rng *rand.Rand) uint32 {
	return packet.IP(10, 20, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
}

// randServer picks a destination inside the routed 10.0.0.0/8 space.
func randServer(rng *rand.Rand) uint32 {
	return packet.IP(10, byte(rng.Intn(3)), byte(rng.Intn(256)), byte(1+rng.Intn(254)))
}

// findCRCCollision searches the enterprise space for a dstAddr such that
// crc16(engSrc, dst) lands in the same Sketch_2 cell (modulus cells) as
// crc16(heavySrc, heavyDst): the engineered flow then shares the heavy
// flow's row-2 cell at the ORIGINAL size, which row 1 masks until Phase 3
// shrinks it — exactly the over-counting hazard §3.3 describes.
func findCRCCollision(heavySrc, heavyDst, engSrc uint32, cells int) (uint32, error) {
	target := flowCell(heavySrc, heavyDst, cells)
	for b2 := 0; b2 < 256; b2++ {
		for b3 := 1; b3 < 255; b3++ {
			dst := packet.IP(10, 0, byte(b2), byte(b3))
			if flowCell(engSrc, dst, cells) == target {
				return dst, nil
			}
		}
	}
	return 0, fmt.Errorf("trafficgen: no crc16 collision found in the 10.0.0.0/16 space")
}

// flowCell computes the Sketch_2 cell of a flow: crc16 over the 8-byte
// (srcAddr, dstAddr) field list, modulo the row size.
func flowCell(src, dst uint32, cells int) uint64 {
	data := hashes.SerializeValues([]uint64{uint64(src), uint64(dst)}, []int{32, 32})
	return hashes.Compute(hashes.CRC16, data, 16) % uint64(cells)
}
