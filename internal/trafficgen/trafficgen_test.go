package trafficgen

import (
	"bytes"
	"testing"

	"p2go/internal/packet"
	"p2go/internal/pcap"
	"p2go/internal/programs"
)

func TestEnterpriseTraceComposition(t *testing.T) {
	trace, err := EnterpriseTrace(EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Packets) != 20000 {
		t.Fatalf("packets = %d, want 20000", len(trace.Packets))
	}
	var blocked, dhcp, dns, tcp int
	for _, pkt := range trace.Packets {
		v, err := packet.Decode(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case v.DNS != nil:
			dns++
		case v.DHCP != nil:
			dhcp++
			if pkt.Port != programs.UntrustedPort {
				t.Error("DHCP packet not on the untrusted port")
			}
		case v.UDP != nil:
			blocked++
		case v.TCP != nil:
			tcp++
		}
	}
	if blocked != 1600 {
		t.Errorf("blocked UDP = %d, want 1600 (8%%)", blocked)
	}
	if dhcp != 2800 {
		t.Errorf("DHCP = %d, want 2800 (14%%)", dhcp)
	}
	if dns != 400 {
		t.Errorf("DNS = %d, want 400 (2%%)", dns)
	}
	if blocked+dhcp+dns+tcp != 20000 {
		t.Errorf("composition does not add up: %d+%d+%d+%d", blocked, dhcp, dns, tcp)
	}
}

func TestEnterpriseTraceDeterministic(t *testing.T) {
	a, err := EnterpriseTrace(EnterpriseSpec{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EnterpriseTrace(EnterpriseSpec{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("lengths differ")
	}
	for i := range a.Packets {
		if a.Packets[i].Port != b.Packets[i].Port || !bytes.Equal(a.Packets[i].Data, b.Packets[i].Data) {
			t.Fatalf("packet %d differs between runs with the same seed", i)
		}
	}
	c, err := EnterpriseTrace(EnterpriseSpec{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Packets {
		if !bytes.Equal(a.Packets[i].Data, c.Packets[i].Data) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different traces")
	}
}

// TestEnterpriseHeavyBeforeEngineered: the CMS-collision engineering needs
// the heavy flow's packets to precede the engineered flow's.
func TestEnterpriseHeavyBeforeEngineered(t *testing.T) {
	trace, err := EnterpriseTrace(EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	heavyLow := dnsHeavySrcLow16
	engLow := dnsHeavySrcLow16 + uint32(programs.Ex1ReducedSketchCells)
	lastHeavy, firstEng := -1, -1
	for i, pkt := range trace.Packets {
		v, _ := packet.Decode(pkt.Data)
		if v == nil || v.DNS == nil {
			continue
		}
		low := v.IPv4.Src & 0xFFFF
		if low == heavyLow {
			lastHeavy = i
		}
		if low == engLow && firstEng == -1 {
			firstEng = i
		}
	}
	if lastHeavy == -1 || firstEng == -1 {
		t.Fatal("heavy or engineered flow missing from the trace")
	}
	if firstEng < lastHeavy {
		t.Errorf("engineered flow starts at %d, before the heavy flow ends at %d", firstEng, lastHeavy)
	}
}

func TestEnterpriseTraceErrors(t *testing.T) {
	if _, err := EnterpriseTrace(EnterpriseSpec{Total: 100}); err == nil {
		t.Error("tiny trace should be rejected")
	}
	if _, err := EnterpriseTrace(EnterpriseSpec{ReducedSketchCells: 1 << 17}); err == nil {
		t.Error("out-of-range reduced cell count should be rejected")
	}
}

func TestNATGRETraceDisjointFeatures(t *testing.T) {
	trace := NATGRETrace(NATGRESpec{Seed: 1})
	natDst := map[uint32]bool{packet.IP(198, 51, 100, 10): true, packet.IP(198, 51, 100, 11): true}
	greDst := map[uint32]bool{packet.IP(10, 5, 0, 1): true, packet.IP(10, 5, 0, 2): true}
	var nat, gre int
	for _, pkt := range trace.Packets {
		v, _ := packet.Decode(pkt.Data)
		if natDst[v.IPv4.Dst] {
			nat++
		}
		if greDst[v.IPv4.Dst] {
			gre++
		}
	}
	if nat == 0 || gre == 0 {
		t.Fatalf("nat=%d gre=%d, want both nonzero", nat, gre)
	}
	// Shares are approximately the spec defaults (30% / 20%).
	total := float64(len(trace.Packets))
	if f := float64(nat) / total; f < 0.25 || f > 0.35 {
		t.Errorf("nat share = %f, want ~0.30", f)
	}
	if f := float64(gre) / total; f < 0.15 || f > 0.25 {
		t.Errorf("gre share = %f, want ~0.20", f)
	}
}

func TestSourceguardTraceLearnsBeforeChecking(t *testing.T) {
	trace := SourceguardTrace(SourceguardSpec{Seed: 1})
	seenData := false
	for _, pkt := range trace.Packets {
		v, _ := packet.Decode(pkt.Data)
		if v.DHCP != nil {
			if seenData {
				t.Fatal("DHCP announcement after data traffic began")
			}
			continue
		}
		if v.TCP != nil {
			seenData = true
		}
	}
	if !seenData {
		t.Fatal("no data traffic in the trace")
	}
	// Quarantined-port packets are present.
	ports := map[uint64]int{}
	for _, pkt := range trace.Packets {
		ports[pkt.Port]++
	}
	if ports[30] == 0 || ports[31] == 0 {
		t.Errorf("quarantined-port packets missing: %v", ports)
	}
}

func TestFailureTraceRetransmissions(t *testing.T) {
	trace := FailureTrace(FailureSpec{Seed: 1})
	type flowKey struct {
		src, dst uint32
		sport    uint16
		seq      uint32
	}
	seen := map[flowKey]int{}
	failedDst := packet.IP(198, 51, 100, 7)
	var failedRetrans int
	for _, pkt := range trace.Packets {
		v, _ := packet.Decode(pkt.Data)
		if v.TCP == nil {
			continue
		}
		k := flowKey{v.IPv4.Src, v.IPv4.Dst, v.TCP.SrcPort, v.TCP.Seq}
		seen[k]++
		if seen[k] > 1 && v.IPv4.Dst == failedDst {
			failedRetrans++
		}
	}
	if failedRetrans < programs.FailureAlarmThreshold {
		t.Errorf("failure burst retransmissions = %d, want >= %d",
			failedRetrans, programs.FailureAlarmThreshold)
	}
}

func TestStressTraceMatchesAtMostOneACL(t *testing.T) {
	trace := StressTrace(1000, 1)
	for _, pkt := range trace.Packets {
		v, _ := packet.Decode(pkt.Data)
		if v.UDP == nil {
			t.Fatal("stress trace must be UDP")
		}
		matches := 0
		for i := 1; i <= programs.StressChainLength; i++ {
			if v.UDP.DstPort == uint16(7000+i) {
				matches++
			}
		}
		if matches > 1 {
			t.Fatalf("packet matches %d ACLs", matches)
		}
	}
}

func TestTraceRecordsRoundTrip(t *testing.T) {
	trace := QuickstartTrace(50, 1)
	recs := trace.Records()
	var buf bytes.Buffer
	if err := pcap.WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	read, err := pcap.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := FromRecords(read, 9)
	if len(back.Packets) != len(trace.Packets) {
		t.Fatalf("round trip lost packets: %d vs %d", len(back.Packets), len(trace.Packets))
	}
	for i := range back.Packets {
		if back.Packets[i].Port != 9 {
			t.Fatal("FromRecords should assign the given port")
		}
		if !bytes.Equal(back.Packets[i].Data, trace.Packets[i].Data) {
			t.Fatalf("packet %d data differs after pcap round trip", i)
		}
	}
	if trace.Describe() != "50 packets" {
		t.Errorf("Describe = %s", trace.Describe())
	}
}
