// Package hashes implements the hash algorithms available to P4
// field_list_calculations: crc16 (CRC-16/ARC), crc32 (IEEE), and identity.
// The simulator, the traffic generator, and the software controller all use
// this package, so the data plane and its software twins agree bit-for-bit.
package hashes

import "fmt"

// Algorithm is a field-list hash algorithm.
type Algorithm int

// Supported algorithms.
const (
	CRC16 Algorithm = iota
	CRC32
	Identity
	// Csum16 is the RFC 1071 ones-complement checksum, used by
	// calculated_field updates (e.g. the IPv4 header checksum).
	Csum16
)

// FromName resolves a P4 algorithm name.
func FromName(name string) (Algorithm, error) {
	switch name {
	case "crc16":
		return CRC16, nil
	case "crc32":
		return CRC32, nil
	case "identity":
		return Identity, nil
	case "csum16":
		return Csum16, nil
	}
	return 0, fmt.Errorf("hashes: unknown algorithm %q", name)
}

func (a Algorithm) String() string {
	switch a {
	case CRC16:
		return "crc16"
	case CRC32:
		return "crc32"
	case Identity:
		return "identity"
	case Csum16:
		return "csum16"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// crc16Table is the CRC-16/ARC table (poly 0x8005, reflected 0xA001).
var crc16Table = makeCRC16Table()

func makeCRC16Table() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ 0xA001
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return t
}

// Sum16 computes CRC-16/ARC over data.
func Sum16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc = (crc >> 8) ^ crc16Table[byte(crc)^b]
	}
	return crc
}

// crc32Table is the IEEE CRC-32 table (reflected poly 0xEDB88320).
var crc32Table = makeCRC32Table()

func makeCRC32Table() [256]uint32 {
	var t [256]uint32
	for i := 0; i < 256; i++ {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return t
}

// Sum32 computes IEEE CRC-32 over data.
func Sum32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = (crc >> 8) ^ crc32Table[byte(crc)^b]
	}
	return ^crc
}

// Compute hashes the serialized field-list bytes with the algorithm and
// truncates the result to outputWidth bits (1..64).
func Compute(alg Algorithm, data []byte, outputWidth int) uint64 {
	var v uint64
	switch alg {
	case CRC16:
		v = uint64(Sum16(data))
	case CRC32:
		v = uint64(Sum32(data))
	case Identity:
		// Low outputWidth bits of the big-endian byte string.
		for _, b := range data {
			v = v<<8 | uint64(b)
		}
	case Csum16:
		v = uint64(ChecksumRFC1071(data))
	}
	if outputWidth < 64 {
		v &= (1 << uint(outputWidth)) - 1
	}
	return v
}

// SerializeValues packs field values into bytes for hashing: each value is
// written big-endian using the field's width rounded up to whole bytes,
// matching how hardware serializes field lists.
func SerializeValues(values []uint64, widths []int) []byte {
	var out []byte
	for i, v := range values {
		nbytes := (widths[i] + 7) / 8
		for b := nbytes - 1; b >= 0; b-- {
			out = append(out, byte(v>>(8*uint(b))))
		}
	}
	return out
}

// PackBits packs field values at their exact bit widths, big-endian, the
// way headers lay out on the wire. The final partial byte, if any, is
// zero-padded in its low bits. For byte-aligned widths the result equals
// SerializeValues.
func PackBits(values []uint64, widths []int) []byte {
	return AppendPackBits(nil, values, widths)
}

// AppendPackBits is PackBits appending into dst, for callers that reuse a
// buffer across hash computations (the simulator's replay hot path).
func AppendPackBits(dst []byte, values []uint64, widths []int) []byte {
	out := dst
	var acc uint64
	accBits := 0
	for i, v := range values {
		w := widths[i]
		if w < 64 {
			v &= 1<<uint(w) - 1
		}
		acc = acc<<uint(w) | v
		accBits += w
		for accBits >= 8 {
			out = append(out, byte(acc>>uint(accBits-8)))
			accBits -= 8
			acc &= 1<<uint(accBits) - 1
		}
	}
	if accBits > 0 {
		out = append(out, byte(acc<<uint(8-accBits)))
	}
	return out
}

// ChecksumRFC1071 computes the ones-complement checksum over data.
func ChecksumRFC1071(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
