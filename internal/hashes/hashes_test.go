package hashes

import (
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestCRC16KnownVectors(t *testing.T) {
	// CRC-16/ARC check value for "123456789" is 0xBB3D.
	if got := Sum16([]byte("123456789")); got != 0xBB3D {
		t.Errorf("Sum16(123456789) = %#x, want 0xBB3D", got)
	}
	if got := Sum16(nil); got != 0 {
		t.Errorf("Sum16(nil) = %#x, want 0", got)
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	cases := [][]byte{nil, {0}, []byte("123456789"), []byte("p2go"), make([]byte, 1000)}
	for _, c := range cases {
		if got, want := Sum32(c), crc32.ChecksumIEEE(c); got != want {
			t.Errorf("Sum32(%q) = %#x, want %#x", c, got, want)
		}
	}
}

func TestCRC32PropertyMatchesStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return Sum32(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentity(t *testing.T) {
	v := Compute(Identity, []byte{0x12, 0x34, 0x56}, 16)
	if v != 0x3456 {
		t.Errorf("identity low 16 bits = %#x, want 0x3456", v)
	}
	v = Compute(Identity, []byte{0x12, 0x34}, 16)
	if v != 0x1234 {
		t.Errorf("identity = %#x, want 0x1234", v)
	}
}

func TestComputeTruncates(t *testing.T) {
	data := []byte("hello world")
	for _, w := range []int{1, 4, 8, 13, 16, 31, 32, 64} {
		for _, alg := range []Algorithm{CRC16, CRC32, Identity} {
			v := Compute(alg, data, w)
			if w < 64 && v >= 1<<uint(w) {
				t.Errorf("Compute(%v, w=%d) = %#x exceeds width", alg, w, v)
			}
		}
	}
}

func TestFromName(t *testing.T) {
	for name, want := range map[string]Algorithm{"crc16": CRC16, "crc32": CRC32, "identity": Identity} {
		got, err := FromName(name)
		if err != nil || got != want {
			t.Errorf("FromName(%s) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %s, want %s", got, got.String(), name)
		}
	}
	if _, err := FromName("md5"); err == nil {
		t.Error("FromName(md5) should fail")
	}
}

func TestSerializeValues(t *testing.T) {
	got := SerializeValues([]uint64{0x1234, 0xAB}, []int{16, 8})
	want := []byte{0x12, 0x34, 0xAB}
	if len(got) != len(want) {
		t.Fatalf("SerializeValues = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SerializeValues = %v, want %v", got, want)
		}
	}
	// 9-bit value occupies two bytes.
	got = SerializeValues([]uint64{0x1FF}, []int{9})
	if len(got) != 2 || got[0] != 0x01 || got[1] != 0xFF {
		t.Errorf("9-bit serialize = %v, want [1 255]", got)
	}
}

func TestDeterminism(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 3; i++ {
		if Compute(CRC16, data, 16) != Compute(CRC16, data, 16) {
			t.Fatal("crc16 not deterministic")
		}
	}
}
