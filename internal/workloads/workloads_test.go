package workloads

import (
	"testing"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
)

// TestAllWorkloadsWellFormed: every registered workload parses, checks,
// builds IR, validates its rules, and generates a trace.
func TestAllWorkloadsWellFormed(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if w.Description == "" || w.Paper == "" {
				t.Error("missing description or paper note")
			}
			ast, err := p4.Parse(w.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := p4.Check(ast); err != nil {
				t.Fatalf("check: %v", err)
			}
			prog, err := ir.Build(ast)
			if err != nil {
				t.Fatalf("ir: %v", err)
			}
			cfg := w.Config()
			if err := rt.Validate(cfg, prog); err != nil {
				t.Fatalf("rules: %v", err)
			}
			trace, err := w.Trace(1)
			if err != nil {
				t.Fatalf("trace: %v", err)
			}
			if len(trace.Packets) == 0 {
				t.Fatal("empty trace")
			}
		})
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-workload"); err == nil {
		t.Error("expected error")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("workloads = %d, want >= 6", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}
