// Package workloads registers the named example workloads — program
// source, runtime configuration, and calibrated traffic trace — used by
// the command-line tools, the examples, and the experiment harness.
package workloads

import (
	"fmt"
	"sort"

	"p2go/internal/programs"
	"p2go/internal/rt"
	"p2go/internal/trafficgen"
)

// Workload bundles everything needed to profile or optimize one example.
type Workload struct {
	Name        string
	Description string
	Source      string
	Config      func() *rt.Config
	Trace       func(seed int64) (*trafficgen.Trace, error)
	// Paper documents the expected stage reduction, for reports.
	Paper string
	// Tune configures the tune pass for workloads whose programs declare
	// @tunable knobs; nil means the workload has no tuning story.
	Tune *TuneSpec
}

// TuneSpec is the workload-level tune-pass configuration, mirrored into
// core.TuneOptions by the CLI and the service without importing core.
type TuneSpec struct {
	// AccuracyTable is the table whose hit count is the accuracy signal.
	AccuracyTable string
	// MaxAccuracyLoss overrides the tune pass's default floor; 0 keeps it.
	MaxAccuracyLoss float64
}

var registry = map[string]Workload{
	"ex1": {
		Name:        "ex1",
		Description: "Example 1 enterprise firewall: IPv4 + UDP/DHCP ACLs + DNS query limiter (CMS)",
		Source:      programs.Ex1,
		Config:      programs.Ex1Config,
		Trace: func(seed int64) (*trafficgen.Trace, error) {
			return trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: seed})
		},
		Paper: "Table 2: 8 -> 7 -> 6 -> 3 stages",
	},
	"l2l3_acl": {
		Name:        "l2l3_acl",
		Description: "L2/L3 router + two rarely hit port ACLs + flow accounting (phase-ordering ablation)",
		Source:      programs.L2L3ACL,
		Config:      programs.L2L3ACLConfig,
		Trace: func(seed int64) (*trafficgen.Trace, error) {
			return trafficgen.L2L3ACLTrace(trafficgen.L2L3ACLSpec{Seed: seed}), nil
		},
		Paper: "§2.2: offloading first removes both ACLs (5 -> 3); the default order saves one of those stages in Phase 2 first",
	},
	"natgre": {
		Name:        "natgre",
		Description: "NAT & GRE features from switch.p4 (dependency removal)",
		Source:      programs.NATGRE,
		Config:      programs.NATGREConfig,
		Trace: func(seed int64) (*trafficgen.Trace, error) {
			return trafficgen.NATGRETrace(trafficgen.NATGRESpec{Seed: seed}), nil
		},
		Paper: "Table 3: 4 -> 3 stages (Removing Dependencies)",
	},
	"sourceguard": {
		Name:        "sourceguard",
		Description: "Sourceguard DHCP snooping with a Bloom-filter database (memory reduction)",
		Source:      programs.Sourceguard,
		Config:      programs.SourceguardConfig,
		Trace: func(seed int64) (*trafficgen.Trace, error) {
			return trafficgen.SourceguardTrace(trafficgen.SourceguardSpec{Seed: seed}), nil
		},
		Paper: "Table 3: 5 -> 4 stages (Reducing Memory, one register -8.4%)",
		Tune:  &TuneSpec{AccuracyTable: "sg_drop"},
	},
	"failure": {
		Name:        "failure",
		Description: "Blink-style failure detection: retransmission BF + per-prefix CMS + alarm (offload)",
		Source:      programs.FailureDetection,
		Config:      programs.FailureConfig,
		Trace: func(seed int64) (*trafficgen.Trace, error) {
			return trafficgen.FailureTrace(trafficgen.FailureSpec{Seed: seed}), nil
		},
		Paper: "Table 3: 4 -> 2 stages (Offloading Code)",
		Tune:  &TuneSpec{AccuracyTable: "FailureAlarm"},
	},
	"maglev": {
		Name:        "maglev",
		Description: "Maglev-style L4 load balancer with a tunable per-connection table (parameter tuning)",
		Source:      programs.Maglev,
		Config:      programs.MaglevConfig,
		Trace: func(seed int64) (*trafficgen.Trace, error) {
			return trafficgen.MaglevTrace(trafficgen.MaglevSpec{Seed: seed}), nil
		},
		Paper: "tune: 5 -> 4 stages (conn_cells shrunk until both connection registers share a stage)",
		Tune:  &TuneSpec{AccuracyTable: "maglev_rehash"},
	},
	"syncookie": {
		Name:        "syncookie",
		Description: "SYN-cookie DDoS mitigation with a tunable proven-clients filter (parameter tuning)",
		Source:      programs.SynCookie,
		Config:      programs.SynCookieConfig,
		Trace: func(seed int64) (*trafficgen.Trace, error) {
			return trafficgen.SynCookieTrace(trafficgen.SynCookieSpec{Seed: seed}), nil
		},
		Paper: "tune: 4 -> 3 stages (sc_bf_cells shrunk until the proven-clients filter shares a stage)",
		Tune:  &TuneSpec{AccuracyTable: "cookie_check"},
	},
	"stress": {
		Name:        "stress",
		Description: "Does-not-fit 14-deep ACL chain (oversized program, folded by Phase 2)",
		Source:      programs.Stress(),
		Config:      programs.StressConfig,
		Trace: func(seed int64) (*trafficgen.Trace, error) {
			return trafficgen.StressTrace(0, seed), nil
		},
		Paper: "§2.2: compiles in simulation at 14 stages, fits after optimization",
	},
	"quickstart": {
		Name:        "quickstart",
		Description: "Minimal L3 router (no optimization opportunities)",
		Source:      programs.Quickstart,
		Config:      programs.QuickstartConfig,
		Trace: func(seed int64) (*trafficgen.Trace, error) {
			return trafficgen.QuickstartTrace(0, seed), nil
		},
		Paper: "baseline: 2 stages, unchanged",
	},
}

// Get returns a registered workload.
func Get(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown workload %q (have: %v)", name, Names())
	}
	return w, nil
}

// Names lists the registered workloads, sorted.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
