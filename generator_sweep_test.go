package p2go

import (
	"flag"
	"fmt"
	"testing"

	"p2go/internal/programs"
)

// The differential sweep's seed count. The default keeps `go test ./...`
// fast while still covering every generator dimension several times over;
// raise it for a deeper sweep:
//
//	go test -run TestGeneratedDifferential -generator-seeds 512 .
var generatorSeeds = flag.Int("generator-seeds", 64, "seed count for the generated-program differential sweep")

// genTrace converts the generator's neutral packets to a Trace.
func genTrace(g *programs.Generated) *Trace {
	tr := &Trace{}
	for _, p := range g.Packets {
		tr.Packets = append(tr.Packets, TracePacket{Port: p.Port, Data: p.Data})
	}
	return tr
}

// TestGeneratedDifferential is the whole-optimizer differential harness:
// for every generated program, the full default pipeline must produce an
// optimized program (plus controller, when Phase 4 offloaded) whose
// per-packet fates match the original on the matched trace. A failing seed
// is a complete reproducer (the generator is deterministic — see
// TestGeneratorDeterminism).
func TestGeneratedDifferential(t *testing.T) {
	for seed := int64(0); seed < int64(*generatorSeeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			g := programs.Generate(seed)
			prog, err := ParseProgram(g.Source)
			if err != nil {
				t.Fatalf("generated program does not parse:\n%s\nerror: %v", g.Source, err)
			}
			cfg, err := ParseRules(g.Rules)
			if err != nil {
				t.Fatalf("generated rules do not parse:\n%s\nerror: %v", g.Rules, err)
			}
			trace := genTrace(g)

			res, err := Optimize(prog, cfg, trace, Options{})
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			if res.StagesAfter() > res.StagesBefore() {
				t.Errorf("optimizer grew the pipeline: %d -> %d stages", res.StagesBefore(), res.StagesAfter())
			}
			rep, err := VerifyEquivalence(res, cfg, trace)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if !rep.Equivalent() {
				t.Errorf("default pipeline not equivalent: %d mismatches over %d packets (first: %s)\nprogram:\n%s",
					rep.Mismatches, rep.Packets, rep.First, g.Source)
			}

			// Tunable programs additionally go through the tune pass. The
			// tuned program intentionally trades accuracy within the floor,
			// so the assertion is on the search contract, not equivalence:
			// bindings stay in range and the pipeline never grows.
			if len(prog.Tunables) == 0 {
				return
			}
			tuned, err := Optimize(prog, cfg, trace, Options{
				Passes: append([]string{"tune"}, DefaultPassIDs()...),
				Tune:   &TuneOptions{AccuracyTable: "gen_limit"},
			})
			if err != nil {
				t.Fatalf("optimize with tune: %v", err)
			}
			if tuned.StagesAfter() > res.StagesAfter() {
				t.Errorf("tune made the pipeline worse: %d -> %d stages", res.StagesAfter(), tuned.StagesAfter())
			}
			for _, k := range tuned.Tunables {
				v, ok := tuned.Bindings[k.Name]
				if !ok {
					t.Errorf("tuned result missing binding for %s", k.Name)
					continue
				}
				if v < k.Min || v > k.Max {
					t.Errorf("tuned %s = %d outside [%d, %d]", k.Name, v, k.Min, k.Max)
				}
			}
		})
	}
}
