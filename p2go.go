// Package p2go is a Go implementation of P2GO ("P4 Profile-Guided
// Optimizations", HotNets '20): a profile-guided optimizer that works
// alongside a P4 compiler to reduce the hardware resources a P4_14 program
// needs.
//
// Given a program, its runtime configuration (match-action rules), and a
// representative traffic trace, P2GO:
//
//  1. profiles the program in a behavioral simulator, recording per-table
//     hit rates and the sets of non-exclusive actions;
//  2. removes dependencies that never manifest in the profile, letting the
//     compiler co-locate tables;
//  3. shrinks table and register memory by the minimum amount (found with
//     binary search) that saves a pipeline stage, verifying the profile is
//     unchanged;
//  4. offloads rarely used, self-contained code segments to a controller.
//
// Every change is reported as an Observation carrying the profile evidence
// behind it, so the operator can accept or reject it.
//
// The package is a facade over the building blocks in internal/: the P4_14
// front end (lexer/parser/AST/printer), the RMT-style stage allocator and
// dependency analysis standing in for the Tofino compiler, the behavioral
// simulator, the traffic generators, the profiler, the optimizer, the P5
// baseline, and the software controller. A typical session:
//
//	prog, _ := p2go.ParseProgram(src)
//	cfg, _ := p2go.ParseRules(rules)
//	res, _ := p2go.Optimize(prog, cfg, trace, p2go.Options{})
//	fmt.Println(p2go.RenderHistory(res.History)) // Table 2-style report
//	fmt.Println(p2go.PrintProgram(res.Optimized))
package p2go

import (
	"context"

	"p2go/internal/controller"
	"p2go/internal/core"
	"p2go/internal/online"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/rt"
	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
)

// Core types, re-exported for the public API.
type (
	// Program is a parsed P4_14 program.
	Program = p4.Program
	// Config is a runtime configuration: the match-action rules.
	Config = rt.Config
	// Rule is one installed table entry.
	Rule = rt.Rule
	// Trace is an ordered traffic trace (ingress port + frame bytes).
	Trace = trafficgen.Trace
	// TracePacket is one trace entry.
	TracePacket = trafficgen.Packet
	// Target describes the RMT hardware model (stages, per-stage memory).
	Target = tofino.Target
	// CompileResult bundles the compiler outputs P2GO consumes: stage
	// mapping, dependency graph, and control graph.
	CompileResult = tofino.Result
	// Mapping is a table-to-stage allocation.
	Mapping = tofino.Mapping
	// Profile holds per-table hit rates and non-exclusive action sets.
	Profile = profile.Profile
	// Options configures an optimization run.
	Options = core.Options
	// Result is the outcome of an optimization run.
	Result = core.Result
	// Observation is one profile-guided finding with its evidence.
	Observation = core.Observation
	// StageSnapshot records the pipeline length after one phase.
	StageSnapshot = core.StageSnapshot
	// PassInfo describes one registered optimization pass.
	PassInfo = core.PassInfo
	// PassStat is one executed pass's runtime and analysis-cache counters.
	PassStat = core.PassStat
	// TuneOptions configures the opt-in "tune" pass: the accuracy signal
	// table and the tolerated accuracy loss for the knob search.
	TuneOptions = core.TuneOptions
	// TunedKnob is one @tunable symbol's declared range and final value,
	// reported in Result.Tunables.
	TunedKnob = core.TunedKnob
	// AnalysisCache memoizes compiles and profiles by content digest;
	// share one across runs (Options.AnalysisCache) so a re-run with
	// changed Options replays mostly from cache.
	AnalysisCache = core.AnalysisCache
	// Controller executes an offloaded segment on redirected packets.
	Controller = controller.Controller
	// Deployment composes the optimized data plane with a controller.
	Deployment = controller.Deployment
	// EquivalenceReport compares original vs optimized+controller.
	EquivalenceReport = controller.EquivalenceReport
	// ResilientOptions tunes the replicated, fault-tolerant deployment:
	// replica count, retry/backoff, degradation policy, fault injectors.
	ResilientOptions = controller.ResilientOptions
	// ChaosReport is the chaos-equivalence verdict: every divergence
	// either explicitly degraded or counted as silent (the invariant is
	// that Silent stays zero).
	ChaosReport = controller.ChaosReport
	// OnlineMonitor is an instrumented data plane with windowed online
	// profiling and drift detection (§6 "Dynamic compilation").
	OnlineMonitor = online.Monitor
	// OnlineConfig tunes the monitor's window size, sampling rate, and
	// drift threshold.
	OnlineConfig = online.Config
	// Drift reports one table whose live hit rate left the baseline band.
	Drift = online.Drift
)

// ParseProgram parses and checks P4_14 source.
func ParseProgram(src string) (*Program, error) {
	prog, err := p4.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := p4.Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// PrintProgram renders a program back to P4_14 source.
func PrintProgram(prog *Program) string { return p4.Print(prog) }

// ParseRules parses a runtime configuration in the text format
// ("table_add <table> <action> <match>... => <arg>...").
func ParseRules(text string) (*Config, error) { return rt.Parse(text) }

// FormatRules renders a configuration back to the text format.
func FormatRules(cfg *Config) string { return rt.Format(cfg) }

// ParseBindings parses a "name=value,name=value" tunable bindings string
// (the `p2go optimize -set` / job-spec "bindings" format).
func ParseBindings(s string) (map[string]int, error) { return p4.ParseBindings(s) }

// FormatBindings renders bindings canonically: sorted, "a=1,b=2".
func FormatBindings(b map[string]int) string { return p4.FormatBindings(b) }

// InstantiateProgram binds a parameterized program's @tunable symbols to
// concrete values (missing names take their declared defaults) and returns
// the concrete program; Optimize does this implicitly via Options.Bindings.
func InstantiateProgram(prog *Program, bindings map[string]int) (*Program, error) {
	return p4.Instantiate(prog, bindings)
}

// DefaultTarget returns the default hardware model: 12 stages with 256 KiB
// SRAM and 64 KiB TCAM each.
func DefaultTarget() Target { return tofino.DefaultTarget() }

// Compile maps a program onto the target, producing the stage mapping,
// dependency graph, and control graph. Compilation succeeds even when the
// program needs more stages than the target has (Mapping.Fits is false),
// so oversized programs can still be profiled and optimized.
func Compile(prog *Program, tgt Target) (*CompileResult, error) {
	return tofino.Compile(prog, tgt)
}

// RunProfile profiles the program on the trace: it instruments the program
// so every packet records the actions applied to it, replays the trace in
// the behavioral simulator, and derives hit rates and non-exclusive action
// sets (the paper's Phase 1).
func RunProfile(prog *Program, cfg *Config, trace *Trace) (*Profile, error) {
	return profile.Run(prog, cfg, trace)
}

// RunProfileContext is RunProfile under a tracer-carrying context (see
// Tracing below): instrumentation and the trace replay are recorded as
// "profile.instrument" and "sim.replay" spans.
func RunProfileContext(ctx context.Context, prog *Program, cfg *Config, trace *Trace) (*Profile, error) {
	return profile.RunContext(ctx, prog, cfg, trace)
}

// RunProfileParallel is RunProfile with the trace sharded across up to
// shards workers (0 means one per CPU), each replaying against its own
// simulator; the per-shard profiles merge deterministically, so the
// result equals the sequential profile. Programs whose replay behavior
// depends on cross-packet register state (Count-Min sketches, Bloom
// filters) are detected statically and fall back to sequential replay.
func RunProfileParallel(prog *Program, cfg *Config, trace *Trace, shards int) (*Profile, error) {
	return profile.RunParallel(prog, cfg, trace, shards)
}

// RunProfileParallelContext is RunProfileParallel with tracing and
// cancellation; the sharded replay is recorded as a "sim.replay-sharded"
// span (or "sim.replay-fallback" plus the sequential "sim.replay" when
// the program is stateful).
func RunProfileParallelContext(ctx context.Context, prog *Program, cfg *Config, trace *Trace, shards int) (*Profile, error) {
	return profile.RunParallelContext(ctx, prog, cfg, trace, shards)
}

// Optimize runs the full P2GO pipeline: profile, remove dependencies,
// reduce memory, offload code. The result carries the optimized program,
// the observations with their evidence, the per-phase stage history, and —
// when something was offloaded — the controller program.
func Optimize(prog *Program, cfg *Config, trace *Trace, opts Options) (*Result, error) {
	return core.New(opts).Optimize(prog, cfg, trace)
}

// OptimizeContext is Optimize with cancellation and tracing: the pipeline
// checks ctx before every compile and trace replay (the operations that
// dominate cost) and aborts with ctx's error once it is done. Long-running
// callers — the p2god service in particular — use this to enforce per-job
// timeouts and user-requested cancellation.
//
// Tracing: when ctx carries a tracer (obs.WithTracer), every pipeline
// step — each phase, each dependency-removal candidate, each memory-probe
// halving and binary-search iteration, each re-profile and verifying
// recompile — is recorded as a hierarchical span and exported as the run
// proceeds. The `p2go optimize -trace` flag and the p2god daemon both
// build on this.
func OptimizeContext(ctx context.Context, prog *Program, cfg *Config, trace *Trace, opts Options) (*Result, error) {
	opts.Context = ctx
	return core.New(opts).Optimize(prog, cfg, trace)
}

// RenderHistory formats per-phase stage snapshots as a Table 2-style
// report.
func RenderHistory(history []StageSnapshot) string { return core.RenderHistory(history) }

// Passes lists the registered optimization passes in default order. The
// selectable ones (neither Implicit nor ReadOnly) may be scheduled in any
// order and multiplicity via Options.Passes, `p2go optimize -passes`, or
// a job spec's "passes" field.
func Passes() []PassInfo { return core.Passes() }

// DefaultPassIDs returns the default pass schedule (the paper's phase
// order).
func DefaultPassIDs() []string { return core.DefaultPassIDs() }

// ValidatePasses checks a pass schedule against the registry without
// running anything.
func ValidatePasses(ids []string) error { return core.ValidatePasses(ids) }

// NewAnalysisCache builds an empty analysis cache for Options.AnalysisCache.
func NewAnalysisCache() *AnalysisCache { return core.NewAnalysisCache() }

// Int returns a pointer to v, for the optional int Options fields.
func Int(v int) *int { return core.Int(v) }

// Float returns a pointer to v, for the optional float Options fields.
func Float(v float64) *float64 { return core.Float(v) }

// NewOnlineMonitor instruments the optimized program for online profiling
// against the baseline profile (typically Result.FinalProfile): the
// monitor detects when live traffic drifts from the profile the
// optimizations were derived from, and records recent packets as the fresh
// trace for re-optimization.
func NewOnlineMonitor(prog *Program, rules *Config, baseline *Profile, cfg OnlineConfig) (*OnlineMonitor, error) {
	return online.NewMonitor(prog, rules, baseline, cfg)
}

// NewController builds a software controller executing an offloaded
// segment (Result.ControllerProgram); rules for tables outside the segment
// are filtered from cfg automatically.
func NewController(segment *Program, cfg *Config) (*Controller, error) {
	return controller.New(segment, cfg)
}

// NewDeployment composes the optimized data plane with a controller.
func NewDeployment(optimized *Program, optimizedCfg *Config, segment *Program, fullCfg *Config) (*Deployment, error) {
	return controller.NewDeployment(optimized, optimizedCfg, segment, fullCfg)
}

// VerifyEquivalence replays the trace through the original program and the
// optimized program + controller, comparing every packet's fate. When the
// run offloaded nothing, the controller side is an empty pass-through and
// the check compares the two programs directly.
func VerifyEquivalence(res *Result, cfg *Config, trace *Trace) (*EquivalenceReport, error) {
	segment := res.ControllerProgram
	if segment == nil {
		segment = p4.MustParse("control ingress { }")
	}
	return controller.VerifyEquivalence(res.Original, cfg, res.Optimized, res.OptimizedConfig,
		segment, trace)
}

// VerifyEquivalenceContext is VerifyEquivalence under a tracer-carrying
// context: the comparison runs inside a "controller.verify" span with a
// "controller.redirect" child for every packet the data plane sends to
// the controller.
func VerifyEquivalenceContext(ctx context.Context, res *Result, cfg *Config, trace *Trace) (*EquivalenceReport, error) {
	segment := res.ControllerProgram
	if segment == nil {
		segment = p4.MustParse("control ingress { }")
	}
	return controller.VerifyEquivalenceContext(ctx, res.Original, cfg, res.Optimized, res.OptimizedConfig,
		segment, trace)
}

// VerifyChaosEquivalence is VerifyEquivalence under fault injection: the
// optimized program runs behind a replicated, retrying, policy-degrading
// controller deployment, and every verdict divergence must be explicitly
// flagged as a counted degradation — the report's Clean() is false if any
// divergence was silent.
func VerifyChaosEquivalence(res *Result, cfg *Config, trace *Trace, opts ResilientOptions) (*ChaosReport, error) {
	segment := res.ControllerProgram
	if segment == nil {
		segment = p4.MustParse("control ingress { }")
	}
	return controller.VerifyChaosEquivalence(res.Original, cfg, res.Optimized, res.OptimizedConfig,
		segment, trace, opts)
}

// VerifyChaosEquivalenceContext is VerifyChaosEquivalence under a
// tracer-carrying context: redirect deliveries, retries, and degradation
// decisions all appear as spans under a "controller.verify-chaos" root.
func VerifyChaosEquivalenceContext(ctx context.Context, res *Result, cfg *Config, trace *Trace, opts ResilientOptions) (*ChaosReport, error) {
	segment := res.ControllerProgram
	if segment == nil {
		segment = p4.MustParse("control ingress { }")
	}
	return controller.VerifyChaosEquivalenceContext(ctx, res.Original, cfg, res.Optimized, res.OptimizedConfig,
		segment, trace, opts)
}
