// Command p2go runs the profile-guided optimizer: it profiles a P4_14
// program against a traffic trace and applies the three optimization
// phases, printing the observations and the Table 2-style stage history.
//
// Usage:
//
//	p2go profile  -workload ex1 [-seed N]
//	p2go optimize -workload ex1 [-seed N] [-no-deps] [-no-mem] [-no-offload] [-emit out.p4]
//	p2go optimize -program prog.p4 -rules rules.txt -workload-trace ex1
//	p2go list
//
// Workloads bundle a program, rules, and a calibrated trace; -program and
// -rules override the program/rules while borrowing a workload's trace.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"p2go"
	"p2go/internal/controller"
	"p2go/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "optimize":
		err = cmdOptimize(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "list":
		err = cmdList()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "p2go: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2go:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  p2go profile  -workload <name> [-seed N]
  p2go optimize -workload <name> [-seed N] [-no-deps] [-no-mem] [-no-offload] [-emit out.p4]
  p2go serve    -workload <name> [-listen addr]   (optimize, then run the controller over TCP)
  p2go list`)
}

// load resolves the program, rules, and trace from flags.
func load(fs *flag.FlagSet, args []string) (*p2go.Program, *p2go.Config, *p2go.Trace, error) {
	workload := fs.String("workload", "ex1", "named workload (see 'p2go list')")
	programFile := fs.String("program", "", "P4_14 program file (overrides the workload's program)")
	rulesFile := fs.String("rules", "", "rules file (overrides the workload's rules)")
	seed := fs.Int64("seed", 1, "trace generator seed")
	if err := fs.Parse(args); err != nil {
		return nil, nil, nil, err
	}
	w, err := workloads.Get(*workload)
	if err != nil {
		return nil, nil, nil, err
	}
	src := w.Source
	if *programFile != "" {
		data, err := os.ReadFile(*programFile)
		if err != nil {
			return nil, nil, nil, err
		}
		src = string(data)
	}
	prog, err := p2go.ParseProgram(src)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("parse program: %w", err)
	}
	cfg := w.Config()
	if *rulesFile != "" {
		data, err := os.ReadFile(*rulesFile)
		if err != nil {
			return nil, nil, nil, err
		}
		cfg, err = p2go.ParseRules(string(data))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("parse rules: %w", err)
		}
	}
	trace, err := w.Trace(*seed)
	if err != nil {
		return nil, nil, nil, err
	}
	return prog, cfg, trace, nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	prog, cfg, trace, err := load(fs, args)
	if err != nil {
		return err
	}
	prof, err := p2go.RunProfile(prog, cfg, trace)
	if err != nil {
		return err
	}
	fmt.Print(prof.Render())
	return nil
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	noDeps := fs.Bool("no-deps", false, "disable Phase 2 (dependency removal)")
	noMem := fs.Bool("no-mem", false, "disable Phase 3 (memory reduction)")
	noOffload := fs.Bool("no-offload", false, "disable Phase 4 (offloading)")
	emit := fs.String("emit", "", "write the optimized program to this file")
	emitCtl := fs.String("emit-controller", "", "write the controller program to this file")
	prog, cfg, trace, err := load(fs, args)
	if err != nil {
		return err
	}
	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{
		DisablePhase2: *noDeps,
		DisablePhase3: *noMem,
		DisablePhase4: *noOffload,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	report, err := p2go.VerifyEquivalence(res, cfg, trace)
	if err != nil {
		return err
	}
	fmt.Println("\nbehavior check:", report)
	if *emit != "" {
		if err := os.WriteFile(*emit, []byte(p2go.PrintProgram(res.Optimized)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *emit)
	}
	if *emitCtl != "" && res.ControllerProgram != nil {
		if err := os.WriteFile(*emitCtl, []byte(p2go.PrintProgram(res.ControllerProgram)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *emitCtl)
	}
	return nil
}

// cmdServe optimizes the workload and serves the generated controller
// program behind the TCP packet-in protocol until interrupted.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9099", "packet-in listen address")
	prog, cfg, trace, err := load(fs, args)
	if err != nil {
		return err
	}
	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		return err
	}
	if res.ControllerProgram == nil {
		return fmt.Errorf("nothing was offloaded; no controller to serve")
	}
	fmt.Printf("optimized %d -> %d stages; offloaded %v\n",
		res.StagesBefore(), res.StagesAfter(), res.OffloadedTables)
	ctl, err := p2go.NewController(res.ControllerProgram, cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("controller serving the offloaded segment on %s (Ctrl-C to stop)\n", l.Addr())
	srv := controller.NewServer(ctl)
	return srv.Serve(l)
}

func cmdList() error {
	for _, name := range workloads.Names() {
		w, err := workloads.Get(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %s\n%-12s paper: %s\n", w.Name, w.Description, "", w.Paper)
	}
	return nil
}
