// Command p2go runs the profile-guided optimizer: it profiles a P4_14
// program against a traffic trace and applies the three optimization
// phases, printing the observations and the Table 2-style stage history.
//
// Usage:
//
//	p2go profile  -workload ex1 [-seed N] [-json] [-trace out.json] [-log-level debug]
//	p2go optimize -workload ex1 [-seed N] [-passes phase4,phase2,phase3] [-emit out.p4] [-json]
//	p2go optimize -workload ex1 -trace trace.json   (span timeline; load in Perfetto)
//	p2go optimize -program prog.p4 -rules rules.txt -workload-trace ex1
//	p2go optimize -workload ex1 -faults "controller.down:from=10,to=60" -degrade fail-open
//	p2go submit   -server http://127.0.0.1:9095 -workload ex1 [-wait]
//	p2go status   -server http://127.0.0.1:9095 -id j-000001
//	p2go jobs     -server http://127.0.0.1:9095
//	p2go fleet submit -server http://127.0.0.1:9095 -devices 64 -workload quickstart [-wait]
//	p2go fleet submit -server http://127.0.0.1:9095 -spec fleet.json [-wait]
//	p2go fleet status -server http://127.0.0.1:9095 -id j-000001
//	p2go profiles list -server http://127.0.0.1:9095
//	p2go profiles get  -server http://127.0.0.1:9095 -id <capture-id> -o daemon.pprof
//	p2go passes
//	p2go list
//
// Workloads bundle a program, rules, and a calibrated trace; -program and
// -rules override the program/rules while borrowing a workload's trace.
// The submit/status/jobs subcommands are clients for the p2god service;
// -json emits the same machine-readable job-result schema p2god returns.
// The fleet verbs submit network-wide jobs: p2god optimizes every device
// in the topology against its own observed traffic and returns one
// aggregated report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"p2go"
	"p2go/internal/controller"
	"p2go/internal/faults"
	"p2go/internal/obs"
	"p2go/internal/report"
	"p2go/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "optimize":
		err = cmdOptimize(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "jobs":
		err = cmdJobs(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "profiles":
		err = cmdProfiles(os.Args[2:])
	case "passes":
		err = cmdPasses()
	case "list":
		err = cmdList()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "p2go: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2go:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  p2go profile  -workload <name> [-seed N] [-set k=v,...] [-parallelism N] [-json] [-trace out.json] [-log-level debug]
  p2go optimize -workload <name> [-seed N] [-passes id,id,...] [-emit out.p4] [-json]
                [-tune] [-set k=v,...]   (knob search over @tunable parameters / pin them)
                [-parallelism N] [-trace out.json] [-log-level debug]
                [-no-deps] [-no-mem] [-no-offload]   (deprecated; use -passes)
                [-faults <plan>] [-degrade fail-open|fail-closed|fallback] [-replicas N]
                (with -faults, equivalence is verified under injected failures:
                 e.g. -faults "controller.down:from=10,to=60;redirect.loss:p=0.3,seed=7")
  p2go serve    -workload <name> [-listen addr]   (optimize, then run the controller over TCP)
  p2go submit   -server <url> -workload <name> [-kind profile|optimize] [-wait] [-timeout d]   (p2god client)
  p2go status   -server <url> -id <job-id> [-timeout d]
  p2go jobs     -server <url> [-timeout d]
  p2go fleet submit -server <url> [-spec fleet.json | -devices N -workload <name> -seed S -packets N]
                [-passes id,id,...] [-device-parallelism N] [-wait]   (network-wide job)
  p2go fleet status -server <url> -id <fleet-job-id>
  p2go fleet jobs   -server <url>
  p2go profiles list    -server <url>   (the daemon's stored self-captures)
  p2go profiles get     -server <url> -id <capture-id> [-o out.pprof]
  p2go profiles capture -server <url>   (take a CPU+heap capture now)
  p2go passes   (list the registered optimization passes)
  p2go list`)
}

// loaded is the resolved input set for a run.
type loaded struct {
	prog     *p2go.Program
	cfg      *p2go.Config
	trace    *p2go.Trace
	workload string
	seed     int64
	// bindings are the -set tunable assignments (nil when unset).
	bindings map[string]int
	// tune is the workload's tune-pass configuration, nil when the
	// workload declares none.
	tune *workloads.TuneSpec
}

// observability is the CLI's tracing/logging surface: the -trace and
// -log-level flags shared by the profile and optimize subcommands.
type observability struct {
	traceFile string
	logLevel  string
	exporter  *obs.ChromeExporter
	logger    *slog.Logger
}

// flags registers -trace and -log-level on the subcommand's flag set.
func (o *observability) flags(fs *flag.FlagSet) {
	fs.StringVar(&o.traceFile, "trace", "", "write a Chrome trace-event JSON file of the run (load in Perfetto)")
	fs.StringVar(&o.logLevel, "log-level", "", "log verbosity on stderr: debug, info (default), warn, error")
}

// context builds the run context: a tracer when -trace was given, and the
// stderr logger at the requested level.
func (o *observability) context() (context.Context, error) {
	level, err := obs.ParseLevel(o.logLevel)
	if err != nil {
		return nil, err
	}
	o.logger = obs.NewLogger(os.Stderr, level)
	ctx := context.Background()
	if o.traceFile != "" {
		o.exporter = obs.NewChromeExporter()
		ctx = obs.WithTracer(ctx, obs.NewTracer(o.exporter))
	}
	return ctx, nil
}

// finish flushes the trace file, if one was requested.
func (o *observability) finish() error {
	if o.exporter == nil {
		return nil
	}
	f, err := os.Create(o.traceFile)
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	if err := o.exporter.Flush(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	o.logger.Info("wrote trace", "path", o.traceFile,
		"spans", len(o.exporter.Spans()))
	return nil
}

// load resolves the program, rules, and trace from flags.
func load(fs *flag.FlagSet, args []string) (*loaded, error) {
	workload := fs.String("workload", "ex1", "named workload (see 'p2go list')")
	programFile := fs.String("program", "", "P4_14 program file (overrides the workload's program)")
	rulesFile := fs.String("rules", "", "rules file (overrides the workload's rules)")
	seed := fs.Int64("seed", 1, "trace generator seed")
	set := fs.String("set", "", `tunable bindings, e.g. "sc_bf_cells=32768,other=10" (default: the @tunable declarations' defaults)`)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	w, err := workloads.Get(*workload)
	if err != nil {
		return nil, err
	}
	src := w.Source
	if *programFile != "" {
		data, err := os.ReadFile(*programFile)
		if err != nil {
			return nil, err
		}
		src = string(data)
	}
	prog, err := p2go.ParseProgram(src)
	if err != nil {
		return nil, fmt.Errorf("parse program: %w", err)
	}
	cfg := w.Config()
	if *rulesFile != "" {
		data, err := os.ReadFile(*rulesFile)
		if err != nil {
			return nil, err
		}
		cfg, err = p2go.ParseRules(string(data))
		if err != nil {
			return nil, fmt.Errorf("parse rules: %w", err)
		}
	}
	trace, err := w.Trace(*seed)
	if err != nil {
		return nil, err
	}
	var bindings map[string]int
	if *set != "" {
		if bindings, err = p2go.ParseBindings(*set); err != nil {
			return nil, err
		}
	}
	return &loaded{prog: prog, cfg: cfg, trace: trace, workload: *workload, seed: *seed,
		bindings: bindings, tune: w.Tune}, nil
}

// printJSON emits the shared machine-readable job-result schema.
func printJSON(r *report.JobResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the machine-readable job-result schema")
	parallelism := fs.Int("parallelism", 0, "replay shards (0 = all CPUs, 1 = sequential; stateful programs always replay sequentially)")
	var o observability
	o.flags(fs)
	in, err := load(fs, args)
	if err != nil {
		return err
	}
	ctx, err := o.context()
	if err != nil {
		return err
	}
	o.logger.Debug("profiling", "workload", in.workload, "seed", in.seed,
		"packets", len(in.trace.Packets), "parallelism", *parallelism)
	// Profiling runs on the concrete program: bind the @tunable symbols
	// (-set values, declared defaults for the rest).
	concrete, err := p2go.InstantiateProgram(in.prog, in.bindings)
	if err != nil {
		return err
	}
	prof, err := p2go.RunProfileParallelContext(ctx, concrete, in.cfg, in.trace, *parallelism)
	if err != nil {
		return err
	}
	if err := o.finish(); err != nil {
		return err
	}
	if *jsonOut {
		return printJSON(report.FromProfile(in.workload, in.seed, prof))
	}
	fmt.Print(prof.Render())
	return nil
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	passes := fs.String("passes", "", "comma-separated pass schedule, e.g. phase4,phase2,phase3 (see 'p2go passes'; empty = default order)")
	noDeps := fs.Bool("no-deps", false, "disable Phase 2 (dependency removal); deprecated, use -passes")
	noMem := fs.Bool("no-mem", false, "disable Phase 3 (memory reduction); deprecated, use -passes")
	noOffload := fs.Bool("no-offload", false, "disable Phase 4 (offloading); deprecated, use -passes")
	emit := fs.String("emit", "", "write the optimized program to this file")
	emitCtl := fs.String("emit-controller", "", "write the controller program to this file")
	tune := fs.Bool("tune", false, "prepend the tune pass (knob search over @tunable parameters) to the schedule")
	faultPlan := fs.String("faults", "", `fault plan for chaos verification, e.g. "controller.down:from=10,to=60;redirect.loss:p=0.3,seed=7"`)
	degrade := fs.String("degrade", "", `degradation policy under faults: "fail-open" (default), "fail-closed", or "fallback"`)
	replicas := fs.Int("replicas", 2, "controller replicas for chaos verification")
	jsonOut := fs.Bool("json", false, "emit the machine-readable job-result schema")
	parallelism := fs.Int("parallelism", 0, "workers for replay shards and candidate probes (0 = all CPUs, 1 = sequential)")
	var o observability
	o.flags(fs)
	in, err := load(fs, args)
	if err != nil {
		return err
	}
	ctx, err := o.context()
	if err != nil {
		return err
	}
	o.logger.Debug("optimizing", "workload", in.workload, "seed", in.seed,
		"packets", len(in.trace.Packets), "parallelism", *parallelism)
	opts := p2go.Options{
		Passes:        splitPasses(*passes),
		DisablePhase2: *noDeps,
		DisablePhase3: *noMem,
		DisablePhase4: *noOffload,
		Parallelism:   *parallelism,
		Bindings:      in.bindings,
	}
	if in.tune != nil {
		opts.Tune = &p2go.TuneOptions{
			AccuracyTable:   in.tune.AccuracyTable,
			MaxAccuracyLoss: in.tune.MaxAccuracyLoss,
		}
	}
	if *tune {
		if opts.Passes == nil {
			opts.Passes = p2go.DefaultPassIDs()
		}
		opts.Passes = append([]string{"tune"}, opts.Passes...)
	}
	res, err := p2go.OptimizeContext(ctx, in.prog, in.cfg, in.trace, opts)
	if err != nil {
		return err
	}
	o.logger.Debug("optimized", "stages_before", res.StagesBefore(),
		"stages_after", res.StagesAfter(), "offloaded", len(res.OffloadedTables))
	jr := report.FromResult(in.workload, in.seed, res)
	var checkLine string
	var chaosErr error
	if *faultPlan != "" || *degrade != "" {
		set, err := faults.ParseSet(*faultPlan)
		if err != nil {
			return err
		}
		policy, err := controller.ParsePolicy(*degrade)
		if err != nil {
			return err
		}
		chaos, err := p2go.VerifyChaosEquivalenceContext(ctx, res, in.cfg, in.trace, p2go.ResilientOptions{
			Replicas: *replicas,
			Policy:   policy,
			Faults:   set,
		})
		if err != nil {
			return err
		}
		jr.Resilience = report.FromChaos(chaos, *faultPlan, policy.String())
		if chaos.Clean() {
			jr.Equivalence = "equivalent under faults (every divergence counted)"
		} else {
			jr.Equivalence = "SILENT DIVERGENCE"
		}
		checkLine = chaos.String()
		if !chaos.Clean() {
			chaosErr = fmt.Errorf("chaos verification: %d silent divergence(s) (first: %s)",
				chaos.Silent, chaos.First)
		}
	} else {
		check, err := p2go.VerifyEquivalenceContext(ctx, res, in.cfg, in.trace)
		if err != nil {
			return err
		}
		jr.Equivalence = check.String()
		checkLine = check.String()
		// A tuned program intentionally diverges from the default-bindings
		// original by up to the accuracy floor; label that divergence as
		// the accepted trade rather than a bare failure.
		if !check.Equivalent() && check.Packets > 0 {
			for _, k := range res.Tunables {
				if k.Value != k.Default {
					note := fmt.Sprintf(" [%.2f%% divergence vs the default bindings is the tuned accuracy trade; pin -set %q to compare strictly]",
						100*float64(check.Mismatches)/float64(check.Packets), p2go.FormatBindings(res.Bindings))
					jr.Equivalence += note
					checkLine += note
					break
				}
			}
		}
	}
	if err := o.finish(); err != nil {
		return err
	}
	if *jsonOut {
		if err := printJSON(jr); err != nil {
			return err
		}
	} else {
		fmt.Print(res.Report())
		fmt.Println("\nbehavior check:", checkLine)
	}
	if *emit != "" {
		if err := os.WriteFile(*emit, []byte(p2go.PrintProgram(res.Optimized)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *emit)
	}
	if *emitCtl != "" && res.ControllerProgram != nil {
		if err := os.WriteFile(*emitCtl, []byte(p2go.PrintProgram(res.ControllerProgram)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *emitCtl)
	}
	return chaosErr
}

// cmdServe optimizes the workload and serves the generated controller
// program behind the TCP packet-in protocol until interrupted; SIGINT and
// SIGTERM shut it down gracefully (close the listener, drain in-flight
// connections).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9099", "packet-in listen address")
	in, err := load(fs, args)
	if err != nil {
		return err
	}
	res, err := p2go.Optimize(in.prog, in.cfg, in.trace, p2go.Options{Bindings: in.bindings})
	if err != nil {
		return err
	}
	if res.ControllerProgram == nil {
		return fmt.Errorf("nothing was offloaded; no controller to serve")
	}
	fmt.Printf("optimized %d -> %d stages; offloaded %v\n",
		res.StagesBefore(), res.StagesAfter(), res.OffloadedTables)
	ctl, err := p2go.NewController(res.ControllerProgram, in.cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("controller serving the offloaded segment on %s (Ctrl-C to stop)\n", l.Addr())
	srv := controller.NewServer(ctl)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case s := <-sig:
			fmt.Printf("received %s; draining controller connections...\n", s)
			srv.Close()
		case <-done:
		}
	}()
	err = srv.Serve(l)
	signal.Stop(sig)
	close(done)
	return err
}

// splitPasses parses a comma-separated -passes value; empty means "use
// the default schedule" (Options.Passes nil).
func splitPasses(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// cmdPasses lists the registered optimization passes.
func cmdPasses() error {
	fmt.Println("passes (in default order; schedule selectable ones with 'p2go optimize -passes id,id,...'):")
	for _, p := range p2go.Passes() {
		var notes []string
		if p.Implicit {
			notes = append(notes, "always runs first")
		}
		if p.ReadOnly {
			notes = append(notes, "read-only; used by offload reporting")
		}
		if p.Default {
			notes = append(notes, "default")
		}
		if p.OptIn {
			notes = append(notes, "opt-in; schedule explicitly (e.g. 'p2go optimize -tune')")
		}
		fmt.Printf("  %-16s %s (%s)\n", p.ID, p.Doc, strings.Join(notes, ", "))
	}
	return nil
}

func cmdList() error {
	for _, name := range workloads.Names() {
		w, err := workloads.Get(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %s\n%-12s paper: %s\n", w.Name, w.Description, "", w.Paper)
	}
	return nil
}
