// p2god HTTP client subcommands: submit, status, jobs.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"p2go/internal/service"
)

// serverFlag registers the -server flag.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://127.0.0.1:9095", "p2god base URL")
}

// httpTimeoutFlag registers the -timeout flag: the per-request HTTP
// deadline. Without it a dead or wedged p2god would hang the CLI forever
// (the zero-timeout http.DefaultClient trap).
func httpTimeoutFlag(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 30*time.Second, "HTTP request timeout (0 = wait forever)")
}

// cmdSubmit posts a job to p2god; with -wait it polls until the job is
// terminal and prints the full status (result included).
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	server := serverFlag(fs)
	kind := fs.String("kind", "optimize", `job kind: "profile" or "optimize"`)
	workload := fs.String("workload", "ex1", "named workload")
	seed := fs.Int64("seed", 1, "trace generator seed")
	passes := fs.String("passes", "", "comma-separated pass schedule, e.g. phase4,phase2,phase3 (see 'p2go passes'; empty = default order)")
	noDeps := fs.Bool("no-deps", false, "disable Phase 2 (dependency removal); deprecated, use -passes")
	noMem := fs.Bool("no-mem", false, "disable Phase 3 (memory reduction); deprecated, use -passes")
	noOffload := fs.Bool("no-offload", false, "disable Phase 4 (offloading); deprecated, use -passes")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job timeout on the server (0 = server default)")
	parallelism := fs.Int("parallelism", 0, "job workers for replay shards and candidate probes (0 = server default)")
	httpTimeout := httpTimeoutFlag(fs)
	wait := fs.Bool("wait", false, "poll until the job finishes and print the result")
	poll := fs.Duration("poll", 200*time.Millisecond, "poll interval with -wait")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := newClient(*httpTimeout)
	spec := service.JobSpec{
		Kind:           *kind,
		Workload:       *workload,
		Seed:           *seed,
		Passes:         splitPasses(*passes),
		NoDeps:         *noDeps,
		NoMem:          *noMem,
		NoOffload:      *noOffload,
		TimeoutSeconds: jobTimeout.Seconds(),
		Parallelism:    *parallelism,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	data, err := httpDo(client, http.MethodPost, *server+"/jobs", body)
	if err != nil {
		return err
	}
	var st service.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("bad response: %w", err)
	}
	if !*wait {
		fmt.Println(string(data))
		return nil
	}
	for !st.State.Terminal() {
		time.Sleep(*poll)
		data, err = httpDo(client, http.MethodGet, *server+"/jobs/"+st.ID, nil)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("bad response: %w", err)
		}
	}
	fmt.Println(string(data))
	if st.State != service.StateDone {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// cmdStatus prints one job's status (result included once done).
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	server := serverFlag(fs)
	httpTimeout := httpTimeoutFlag(fs)
	id := fs.String("id", "", "job ID (from 'p2go submit')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	data, err := httpDo(newClient(*httpTimeout), http.MethodGet, *server+"/jobs/"+*id, nil)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// cmdJobs lists the server's jobs.
func cmdJobs(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	server := serverFlag(fs)
	httpTimeout := httpTimeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := httpDo(newClient(*httpTimeout), http.MethodGet, *server+"/jobs", nil)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// newClient builds a dedicated client with the request deadline; the
// shared http.DefaultClient (no timeout) is deliberately not used.
func newClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

// httpDo performs one request and returns the body, turning non-2xx
// statuses into errors carrying the server's message.
func httpDo(client *http.Client, method, url string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}
