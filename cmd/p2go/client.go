// p2god HTTP client subcommands: submit, status, jobs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"strings"
	"time"

	"p2go/internal/service"
)

// serverFlags registers the replica-set flags: -server for the classic
// single endpoint and -servers for an HA replica set. The two compose
// (duplicates are dropped), so pointing -servers at a 2-replica group
// while keeping the default -server just works.
type serverFlags struct {
	server  *string
	servers *string
	timeout *time.Duration
}

func addServerFlags(fs *flag.FlagSet) *serverFlags {
	return &serverFlags{
		server:  fs.String("server", "http://127.0.0.1:9095", "p2god base URL"),
		servers: fs.String("servers", "", "comma-separated p2god replica set, e.g. http://h1:9095,http://h2:9095 (overrides -server)"),
		// The per-request HTTP deadline. Without it a dead or wedged p2god
		// would hang the CLI forever (the zero-timeout http.DefaultClient
		// trap); with a replica set it also bounds how long one dead
		// replica can delay failover to the next.
		timeout: fs.Duration("timeout", 30*time.Second, "HTTP request timeout (0 = wait forever)"),
	}
}

// client builds the replica-set-aware service client from the parsed
// flags. All verbs share its retry policy: jittered exponential backoff
// honoring Retry-After, failing over across the set.
func (sf *serverFlags) client() *service.Client {
	var servers []string
	if *sf.servers != "" {
		servers = strings.Split(*sf.servers, ",")
	} else {
		servers = []string{*sf.server}
	}
	return service.NewClient(servers, *sf.timeout)
}

// printStatus renders a JobStatus the way the server would.
func printStatus(st service.JobStatus) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// cmdSubmit posts a job to p2god; with -wait it polls until the job is
// terminal and prints the full status (result included).
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	sf := addServerFlags(fs)
	kind := fs.String("kind", "optimize", `job kind: "profile" or "optimize"`)
	workload := fs.String("workload", "ex1", "named workload")
	seed := fs.Int64("seed", 1, "trace generator seed")
	passes := fs.String("passes", "", "comma-separated pass schedule, e.g. phase4,phase2,phase3 (see 'p2go passes'; empty = default order)")
	set := fs.String("set", "", `tunable bindings, e.g. "sc_bf_cells=32768" (default: the @tunable declarations' defaults)`)
	noDeps := fs.Bool("no-deps", false, "disable Phase 2 (dependency removal); deprecated, use -passes")
	noMem := fs.Bool("no-mem", false, "disable Phase 3 (memory reduction); deprecated, use -passes")
	noOffload := fs.Bool("no-offload", false, "disable Phase 4 (offloading); deprecated, use -passes")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job timeout on the server (0 = server default)")
	parallelism := fs.Int("parallelism", 0, "job workers for replay shards and candidate probes (0 = server default)")
	wait := fs.Bool("wait", false, "poll until the job finishes and print the result")
	poll := fs.Duration("poll", 200*time.Millisecond, "poll interval with -wait")
	waitTimeout := fs.Duration("wait-timeout", 10*time.Minute, "give up on -wait after this long (0 = wait forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := sf.client()
	spec := service.JobSpec{
		Kind:           *kind,
		Workload:       *workload,
		Seed:           *seed,
		Passes:         splitPasses(*passes),
		Bindings:       *set,
		NoDeps:         *noDeps,
		NoMem:          *noMem,
		NoOffload:      *noOffload,
		TimeoutSeconds: jobTimeout.Seconds(),
		Parallelism:    *parallelism,
	}
	st, err := client.SubmitJob(spec)
	if err != nil {
		return err
	}
	if !*wait {
		return printStatus(st)
	}
	if st, err = client.AwaitJob(st.ID, *poll, *waitTimeout); err != nil {
		return err
	}
	if err := printStatus(st); err != nil {
		return err
	}
	if st.State != service.StateDone {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// cmdStatus prints one job's status (result included once done), asking
// every configured replica until one knows the ID.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	sf := addServerFlags(fs)
	id := fs.String("id", "", "job ID (from 'p2go submit')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	st, err := sf.client().Job(*id)
	if err != nil {
		return err
	}
	return printStatus(st)
}

// cmdJobs lists jobs merged across the replica set.
func cmdJobs(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	sf := addServerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sts, err := sf.client().Jobs()
	if err != nil {
		return err
	}
	if sts == nil {
		sts = []service.JobStatus{}
	}
	data, err := json.MarshalIndent(sts, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
