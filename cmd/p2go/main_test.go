package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdProfile(t *testing.T) {
	if err := cmdProfile([]string{"-workload", "quickstart"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{"-workload", "no-such"}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestCmdOptimizeEmits(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "opt.p4")
	ctl := filepath.Join(dir, "ctl.p4")
	err := cmdOptimize([]string{"-workload", "failure", "-emit", out, "-emit-controller", ctl})
	if err != nil {
		t.Fatal(err)
	}
	optSrc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(optSrc), "To_Ctl") {
		t.Error("emitted optimized program lacks the redirect table")
	}
	ctlSrc, err := os.ReadFile(ctl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ctlSrc), "FailureAlarm") {
		t.Error("emitted controller program lacks the offloaded alarm")
	}
}

func TestCmdOptimizeDisabledPhases(t *testing.T) {
	if err := cmdOptimize([]string{"-workload", "quickstart", "-no-deps", "-no-mem", "-no-offload"}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOverrides(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "p.p4")
	src := `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action a() { no_op(); }
table t { actions { a; } default_action : a; }
control ingress { apply(t); }
`
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	rules := filepath.Join(dir, "r.txt")
	if err := os.WriteFile(rules, []byte("\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{"-workload", "quickstart", "-program", prog, "-rules", rules}); err != nil {
		t.Fatal(err)
	}
}
