package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"p2go/internal/report"
	"p2go/internal/service"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatal(errRun)
	}
	return out
}

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdProfile(t *testing.T) {
	if err := cmdProfile([]string{"-workload", "quickstart"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{"-workload", "no-such"}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestCmdOptimizeEmits(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "opt.p4")
	ctl := filepath.Join(dir, "ctl.p4")
	err := cmdOptimize([]string{"-workload", "failure", "-emit", out, "-emit-controller", ctl})
	if err != nil {
		t.Fatal(err)
	}
	optSrc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(optSrc), "To_Ctl") {
		t.Error("emitted optimized program lacks the redirect table")
	}
	ctlSrc, err := os.ReadFile(ctl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ctlSrc), "FailureAlarm") {
		t.Error("emitted controller program lacks the offloaded alarm")
	}
}

func TestCmdOptimizeDisabledPhases(t *testing.T) {
	if err := cmdOptimize([]string{"-workload", "quickstart", "-no-deps", "-no-mem", "-no-offload"}); err != nil {
		t.Fatal(err)
	}
}

// TestCmdProfileJSON checks the -json flag emits the shared job-result
// schema the p2god service returns.
func TestCmdProfileJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdProfile([]string{"-workload", "quickstart", "-json"})
	})
	var jr report.JobResult
	if err := json.Unmarshal([]byte(out), &jr); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if jr.Kind != "profile" || jr.Workload != "quickstart" || jr.Seed != 1 {
		t.Errorf("header = kind=%q workload=%q seed=%d", jr.Kind, jr.Workload, jr.Seed)
	}
	if jr.Profile == nil || jr.Profile.TotalPackets == 0 {
		t.Error("missing profile payload")
	}
}

func TestCmdOptimizeJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdOptimize([]string{"-workload", "quickstart", "-json"})
	})
	var jr report.JobResult
	if err := json.Unmarshal([]byte(out), &jr); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if jr.Kind != "optimize" || len(jr.History) == 0 {
		t.Errorf("bad result: kind=%q history=%d rows", jr.Kind, len(jr.History))
	}
	if jr.Equivalence == "" {
		t.Error("CLI JSON should carry the behavior-check verdict")
	}
	if jr.OptimizedP4 == "" {
		t.Error("missing optimized_p4")
	}
}

// TestClientSubcommands drives submit/status/jobs against an in-process
// p2god instance.
func TestClientSubcommands(t *testing.T) {
	m := service.NewManager(service.ManagerConfig{Workers: 1, QueueDepth: 4})
	m.Start()
	srv := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Drain(5 * time.Second)
	})

	out := captureStdout(t, func() error {
		return cmdSubmit([]string{"-server", srv.URL, "-workload", "quickstart",
			"-kind", "profile", "-wait", "-poll", "20ms"})
	})
	var st service.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("submit output not JSON: %v\n%s", err, out)
	}
	if st.State != service.StateDone || len(st.Result) == 0 {
		t.Fatalf("submit -wait = %+v", st)
	}

	out = captureStdout(t, func() error {
		return cmdStatus([]string{"-server", srv.URL, "-id", st.ID})
	})
	if !strings.Contains(out, st.ID) {
		t.Errorf("status output lacks the job ID: %s", out)
	}

	out = captureStdout(t, func() error {
		return cmdJobs([]string{"-server", srv.URL})
	})
	if !strings.Contains(out, st.ID) {
		t.Errorf("jobs output lacks the job ID: %s", out)
	}

	if err := cmdStatus([]string{"-server", srv.URL, "-id", "j-404404"}); err == nil {
		t.Error("status of unknown job should fail")
	}
	if err := cmdStatus([]string{"-server", srv.URL}); err == nil {
		t.Error("status without -id should fail")
	}
}

// TestFleetSubcommands drives fleet submit/status/jobs against an
// in-process p2god instance, both synthetic and from a spec file.
func TestFleetSubcommands(t *testing.T) {
	m := service.NewManager(service.ManagerConfig{Workers: 1, QueueDepth: 4})
	m.Start()
	srv := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Drain(5 * time.Second)
	})

	out := captureStdout(t, func() error {
		return cmdFleet([]string{"submit", "-server", srv.URL, "-devices", "3",
			"-workload", "quickstart", "-packets", "30", "-wait", "-poll", "20ms"})
	})
	var st service.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("fleet submit output not JSON: %v\n%s", err, out)
	}
	if st.Kind != "fleet" || st.State != service.StateDone {
		t.Fatalf("fleet submit -wait = kind %q state %s: %s", st.Kind, st.State, st.Error)
	}
	var res report.FleetResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatalf("fleet result not JSON: %v", err)
	}
	if res.DeviceCount != 3 || res.Optimized != 3 {
		t.Errorf("fleet result = %d devices, %d optimized; want 3/3", res.DeviceCount, res.Optimized)
	}

	// A spec file is the POST /fleets body verbatim.
	specFile := filepath.Join(t.TempDir(), "fleet.json")
	spec, _ := json.Marshal(map[string]any{
		"name":       "from-file",
		"devices":    []map[string]any{{"name": "edge", "workload": "quickstart"}},
		"injections": []map[string]any{{"device": "edge", "workload": "quickstart", "count": 20}},
	})
	if err := os.WriteFile(specFile, spec, 0o644); err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() error {
		return cmdFleet([]string{"submit", "-server", srv.URL, "-spec", specFile})
	})
	var st2 service.JobStatus
	if err := json.Unmarshal([]byte(out), &st2); err != nil {
		t.Fatalf("spec-file submit output not JSON: %v\n%s", err, out)
	}
	if st2.Workload != "from-file" {
		t.Errorf("spec-file fleet named %q, want from-file", st2.Workload)
	}

	out = captureStdout(t, func() error {
		return cmdFleet([]string{"status", "-server", srv.URL, "-id", st.ID})
	})
	if !strings.Contains(out, st.ID) {
		t.Errorf("fleet status output lacks the job ID: %s", out)
	}
	out = captureStdout(t, func() error {
		return cmdFleet([]string{"jobs", "-server", srv.URL})
	})
	if !strings.Contains(out, st.ID) || !strings.Contains(out, st2.ID) {
		t.Errorf("fleet jobs output lacks submitted IDs: %s", out)
	}

	if err := cmdFleet([]string{"bogus"}); err == nil {
		t.Error("unknown fleet verb should fail")
	}
	if err := cmdFleet(nil); err == nil {
		t.Error("bare 'p2go fleet' should fail with usage")
	}
	if err := cmdFleet([]string{"status", "-server", srv.URL}); err == nil {
		t.Error("fleet status without -id should fail")
	}
}

func TestLoadOverrides(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "p.p4")
	src := `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action a() { no_op(); }
table t { actions { a; } default_action : a; }
control ingress { apply(t); }
`
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	rules := filepath.Join(dir, "r.txt")
	if err := os.WriteFile(rules, []byte("\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{"-workload", "quickstart", "-program", prog, "-rules", rules}); err != nil {
		t.Fatal(err)
	}
}
