// p2god self-profile client subcommands: profiles list, get, capture.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// cmdProfiles dispatches the daemon self-profile verbs. p2god with
// -profile-dir periodically captures CPU+heap pprof snapshots of
// itself; these verbs list them, download one (feed it to `go tool
// pprof` or merge several into a PGO profile), or trigger a capture
// on demand.
func cmdProfiles(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf(`usage: p2go profiles <list|get|capture> [flags] (see "p2go help")`)
	}
	switch args[0] {
	case "list":
		return cmdProfilesList(args[1:])
	case "get":
		return cmdProfilesGet(args[1:])
	case "capture":
		return cmdProfilesCapture(args[1:])
	default:
		return fmt.Errorf("unknown profiles command %q (want list, get, or capture)", args[0])
	}
}

// cmdProfilesList prints the stored captures, newest first.
func cmdProfilesList(args []string) error {
	fs := flag.NewFlagSet("profiles list", flag.ContinueOnError)
	sf := addServerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	infos, err := sf.client().Profiles()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(infos, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// cmdProfilesGet downloads one capture's raw pprof bytes.
func cmdProfilesGet(args []string) error {
	fs := flag.NewFlagSet("profiles get", flag.ContinueOnError)
	sf := addServerFlags(fs)
	id := fs.String("id", "", "capture ID (from 'p2go profiles list')")
	out := fs.String("o", "", "write the pprof here (default: the capture ID in the current directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	data, err := sf.client().ProfileBytes(*id)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *id
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	return nil
}

// cmdProfilesCapture asks the daemon to take a CPU+heap capture now.
func cmdProfilesCapture(args []string) error {
	fs := flag.NewFlagSet("profiles capture", flag.ContinueOnError)
	sf := addServerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	infos, err := sf.client().CaptureProfiles()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(infos, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
