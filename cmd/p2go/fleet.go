// p2god fleet client subcommands: fleet submit, fleet status, fleet jobs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"p2go/internal/fleet"
	"p2go/internal/service"
)

// cmdFleet dispatches the network-wide verbs. A fleet job optimizes
// every device in a topology against its own observed traffic (P2GO §6)
// and returns one aggregated report.
func cmdFleet(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf(`usage: p2go fleet <submit|status|jobs> [flags] (see "p2go help")`)
	}
	switch args[0] {
	case "submit":
		return cmdFleetSubmit(args[1:])
	case "status":
		return cmdFleetStatus(args[1:])
	case "jobs":
		return cmdFleetJobs(args[1:])
	default:
		return fmt.Errorf("unknown fleet command %q (want submit, status, or jobs)", args[0])
	}
}

// cmdFleetSubmit posts a fleet spec to p2god. The spec comes from a JSON
// file (-spec, the POST /fleets request body verbatim) or is synthesized
// (-devices N -workload name): N disconnected same-program switches, each
// injected with its own seeded trace — the homogeneous-fleet shape where
// the shared analysis cache collapses N compiles into one.
func cmdFleetSubmit(args []string) error {
	fs := flag.NewFlagSet("fleet submit", flag.ContinueOnError)
	sf := addServerFlags(fs)
	specFile := fs.String("spec", "", "fleet spec JSON file (the POST /fleets body); overrides the synthetic flags")
	devices := fs.Int("devices", 4, "synthetic fleet: number of devices")
	workload := fs.String("workload", "quickstart", "synthetic fleet: workload for every device")
	seed := fs.Int64("seed", 1, "synthetic fleet: base trace seed (device i uses seed+i)")
	packets := fs.Int("packets", 200, "synthetic fleet: packets injected per device")
	passes := fs.String("passes", "", "comma-separated pass schedule for every device (empty = default order)")
	deviceParallelism := fs.Int("device-parallelism", 0, "devices optimized concurrently (0 = all CPUs)")
	wait := fs.Bool("wait", false, "poll until the fleet finishes and print the aggregated report")
	poll := fs.Duration("poll", 200*time.Millisecond, "poll interval with -wait")
	waitTimeout := fs.Duration("wait-timeout", 30*time.Minute, "give up on -wait after this long (0 = wait forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec fleet.Spec
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("parse fleet spec %s: %w", *specFile, err)
		}
	} else {
		spec = fleet.Synthetic(*workload, *devices, *seed, *packets)
	}
	if p := splitPasses(*passes); p != nil {
		spec.Passes = p
	}
	if *deviceParallelism > 0 {
		spec.DeviceParallelism = *deviceParallelism
	}
	client := sf.client()
	st, err := client.SubmitFleet(spec)
	if err != nil {
		return err
	}
	if !*wait {
		return printStatus(st)
	}
	if st, err = client.AwaitFleet(st.ID, *poll, *waitTimeout); err != nil {
		return err
	}
	if err := printStatus(st); err != nil {
		return err
	}
	if st.State != service.StateDone {
		return fmt.Errorf("fleet job %s %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// cmdFleetStatus prints one fleet job's status (the aggregated
// FleetResult attached once done), asking every configured replica.
func cmdFleetStatus(args []string) error {
	fs := flag.NewFlagSet("fleet status", flag.ContinueOnError)
	sf := addServerFlags(fs)
	id := fs.String("id", "", "fleet job ID (from 'p2go fleet submit')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	st, err := sf.client().Fleet(*id)
	if err != nil {
		return err
	}
	return printStatus(st)
}

// cmdFleetJobs lists fleet jobs merged across the replica set.
func cmdFleetJobs(args []string) error {
	fs := flag.NewFlagSet("fleet jobs", flag.ContinueOnError)
	sf := addServerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sts, err := sf.client().Fleets()
	if err != nil {
		return err
	}
	if sts == nil {
		sts = []service.JobStatus{}
	}
	data, err := json.MarshalIndent(sts, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
