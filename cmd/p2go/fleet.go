// p2god fleet client subcommands: fleet submit, fleet status, fleet jobs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"p2go/internal/fleet"
	"p2go/internal/service"
)

// cmdFleet dispatches the network-wide verbs. A fleet job optimizes
// every device in a topology against its own observed traffic (P2GO §6)
// and returns one aggregated report.
func cmdFleet(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf(`usage: p2go fleet <submit|status|jobs> [flags] (see "p2go help")`)
	}
	switch args[0] {
	case "submit":
		return cmdFleetSubmit(args[1:])
	case "status":
		return cmdFleetStatus(args[1:])
	case "jobs":
		return cmdFleetJobs(args[1:])
	default:
		return fmt.Errorf("unknown fleet command %q (want submit, status, or jobs)", args[0])
	}
}

// cmdFleetSubmit posts a fleet spec to p2god. The spec comes from a JSON
// file (-spec, the POST /fleets request body verbatim) or is synthesized
// (-devices N -workload name): N disconnected same-program switches, each
// injected with its own seeded trace — the homogeneous-fleet shape where
// the shared analysis cache collapses N compiles into one.
func cmdFleetSubmit(args []string) error {
	fs := flag.NewFlagSet("fleet submit", flag.ContinueOnError)
	server := serverFlag(fs)
	specFile := fs.String("spec", "", "fleet spec JSON file (the POST /fleets body); overrides the synthetic flags")
	devices := fs.Int("devices", 4, "synthetic fleet: number of devices")
	workload := fs.String("workload", "quickstart", "synthetic fleet: workload for every device")
	seed := fs.Int64("seed", 1, "synthetic fleet: base trace seed (device i uses seed+i)")
	packets := fs.Int("packets", 200, "synthetic fleet: packets injected per device")
	passes := fs.String("passes", "", "comma-separated pass schedule for every device (empty = default order)")
	deviceParallelism := fs.Int("device-parallelism", 0, "devices optimized concurrently (0 = all CPUs)")
	httpTimeout := httpTimeoutFlag(fs)
	wait := fs.Bool("wait", false, "poll until the fleet finishes and print the aggregated report")
	poll := fs.Duration("poll", 200*time.Millisecond, "poll interval with -wait")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec fleet.Spec
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("parse fleet spec %s: %w", *specFile, err)
		}
	} else {
		spec = fleet.Synthetic(*workload, *devices, *seed, *packets)
	}
	if p := splitPasses(*passes); p != nil {
		spec.Passes = p
	}
	if *deviceParallelism > 0 {
		spec.DeviceParallelism = *deviceParallelism
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	client := newClient(*httpTimeout)
	data, err := httpDo(client, http.MethodPost, *server+"/fleets", body)
	if err != nil {
		return err
	}
	var st service.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("bad response: %w", err)
	}
	if !*wait {
		fmt.Println(string(data))
		return nil
	}
	for !st.State.Terminal() {
		time.Sleep(*poll)
		data, err = httpDo(client, http.MethodGet, *server+"/fleets/"+st.ID, nil)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("bad response: %w", err)
		}
	}
	fmt.Println(string(data))
	if st.State != service.StateDone {
		return fmt.Errorf("fleet job %s %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// cmdFleetStatus prints one fleet job's status (the aggregated
// FleetResult attached once done).
func cmdFleetStatus(args []string) error {
	fs := flag.NewFlagSet("fleet status", flag.ContinueOnError)
	server := serverFlag(fs)
	httpTimeout := httpTimeoutFlag(fs)
	id := fs.String("id", "", "fleet job ID (from 'p2go fleet submit')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	data, err := httpDo(newClient(*httpTimeout), http.MethodGet, *server+"/fleets/"+*id, nil)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// cmdFleetJobs lists the server's fleet jobs.
func cmdFleetJobs(args []string) error {
	fs := flag.NewFlagSet("fleet jobs", flag.ContinueOnError)
	server := serverFlag(fs)
	httpTimeout := httpTimeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := httpDo(newClient(*httpTimeout), http.MethodGet, *server+"/fleets", nil)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
