// Command trafficgen emits the calibrated traffic traces of the example
// workloads as pcap files (our substitute for the paper's Scapy-based
// trace crafting). Ingress ports are not representable in classic pcap;
// the optional -ports file records them one per line, aligned with the
// pcap records.
//
// Usage:
//
//	trafficgen -workload ex1 -out ex1.pcap [-ports ex1.ports] [-seed N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"p2go/internal/pcap"
	"p2go/internal/workloads"
)

func main() {
	workload := flag.String("workload", "ex1", "named workload (see 'p2go list')")
	out := flag.String("out", "", "output pcap file (required)")
	portsFile := flag.String("ports", "", "optional file recording per-packet ingress ports")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if err := run(*workload, *out, *portsFile, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
}

func run(workload, out, portsFile string, seed int64) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	w, err := workloads.Get(workload)
	if err != nil {
		return err
	}
	trace, err := w.Trace(seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := pcap.WriteAll(bw, trace.Records()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if portsFile != "" {
		pf, err := os.Create(portsFile)
		if err != nil {
			return err
		}
		defer pf.Close()
		pw := bufio.NewWriter(pf)
		for _, pkt := range trace.Packets {
			fmt.Fprintln(pw, pkt.Port)
		}
		if err := pw.Flush(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d packets to %s\n", len(trace.Packets), out)
	return nil
}
