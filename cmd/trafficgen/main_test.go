package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p2go/internal/pcap"
)

func TestRunWritesPcapAndPorts(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.pcap")
	ports := filepath.Join(dir, "trace.ports")
	if err := run("quickstart", out, ports, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := pcap.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty pcap")
	}
	data, err := os.ReadFile(ports)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines != len(recs) {
		t.Errorf("ports file has %d lines, pcap has %d records", lines, len(recs))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("quickstart", "", "", 1); err == nil {
		t.Error("missing -out should fail")
	}
	if err := run("ghost", filepath.Join(t.TempDir(), "x.pcap"), "", 1); err == nil {
		t.Error("unknown workload should fail")
	}
}
