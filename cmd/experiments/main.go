// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index) and prints
// paper-vs-measured comparisons. Run with no flags for everything, or
// -run <id> for one experiment (EX1, FIG1, TAB1, TAB2, TAB3, ABL1, ABL2,
// ABL3, ABL4). With -bench <file>, it instead runs the micro-benchmark
// suite (compile, profile, optimize per workload) and writes the results
// as JSON — the committed BENCH_p2go.json is produced this way. With
// -fleet, it runs the fleet load test instead: thousands of device-jobs
// through an in-process p2god manager under fault injection, plus the
// cross-device compile-dedup table (-fleet-short shrinks it for CI).
// With -ha, it runs the replica-group chaos proof instead: a fleet
// workload against 2-3 in-process p2god replicas with one kill -9'd
// mid-run, asserting the survivors' final report is equivalent to an
// uninterrupted run (-ha-short shrinks it for CI). With -pgo, it runs
// the self-hosted PGO loop instead: the bundled workloads captured
// under CPU profiling, merged into the committed default.pgo, the tree
// rebuilt with -pgo=auto, and a before/after replay benchmark pair
// appended to BENCH_p2go.json (-pgo-short shrinks it for CI).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"p2go"
	"p2go/internal/core"
	"p2go/internal/p4"
	"p2go/internal/p5"
	"p2go/internal/programs"
	"p2go/internal/sim"
	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
	"p2go/internal/workloads"
)

func main() {
	run := flag.String("run", "", "experiment id to run (empty = all)")
	seed := flag.Int64("seed", 1, "trace seed")
	bench := flag.String("bench", "", "run the micro-benchmark suite instead and write results to this JSON file (e.g. BENCH_p2go.json)")
	benchWorkload := flag.String("bench-workload", "", "restrict -bench to one workload (CI smoke)")
	benchBaseline := flag.String("bench-baseline", "", "compare -bench replay throughput against this committed JSON and fail on a >30% regression")
	fleetRun := flag.Bool("fleet", false, "run the fleet load test instead: device-jobs through an in-process p2god under fault injection")
	fleetDevices := flag.Int("fleet-devices", 2048, "total device-jobs for the -fleet load test")
	fleetShort := flag.Bool("fleet-short", false, "CI smoke: shrink the -fleet load test (caps devices at 64)")
	haRun := flag.Bool("ha", false, "run the replica-group chaos proof instead: kill -9 one of N in-process p2god replicas mid-fleet-job")
	haShort := flag.Bool("ha-short", false, "CI smoke: shrink the -ha chaos proof (2 replicas, small fleet)")
	pgoRun := flag.Bool("pgo", false, "run the self-hosted PGO loop instead: capture, merge into default.pgo, rebuild, A/B replay bench")
	pgoShort := flag.Bool("pgo-short", false, "CI smoke: shrink the -pgo captures")
	pgoOut := flag.String("pgo-out", "", "merged profile destination (default: <module root>/default.pgo)")
	pgoDir := flag.String("pgo-dir", "", "per-workload capture directory (default: <module root>/pgo-profiles)")
	pgoBench := flag.String("pgo-bench", "BENCH_p2go.json", "append PGO before/after rows to this bench JSON (empty skips)")
	pgoReplayBench := flag.String("pgo-replay-bench", "", "internal: run the sequential replay benchmark and write a BenchFile here (A/B child mode)")
	flag.Parse()

	if *pgoReplayBench != "" {
		if err := runPGOReplayBench(*pgoReplayBench, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: pgo-replay-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *pgoRun {
		fmt.Println("===== PGO =====")
		err := runPGO(pgoOptions{
			short: *pgoShort, out: *pgoOut, dir: *pgoDir,
			bench: *pgoBench, seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: pgo: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *haRun {
		fmt.Println("===== HA CHAOS =====")
		if err := runHAChaos(*haShort, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: ha: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fleetRun {
		fmt.Println("===== FLEET =====")
		if err := runFleetLoad(*fleetDevices, *fleetShort, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: fleet: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *bench != "" {
		fmt.Println("===== BENCH =====")
		if err := runBench(*bench, *seed, *benchWorkload, *benchBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	experiments := []struct {
		id string
		fn func(seed int64) error
	}{
		{"EX1", ex1HitRates},
		{"FIG1", fig1DependencyGraph},
		{"TAB1", tab1NonExclusiveSets},
		{"TAB2", tab2StageHistory},
		{"TAB3", tab3Examples},
		{"ABL1", ablOffloadFirst},
		{"ABL2", ablCMSShrink},
		{"ABL3", ablP5Baseline},
		{"ABL4", ablDoesNotFit},
		{"EXT1", extGuards},
		{"EXT2", extOnline},
		{"EXT3", extNetwork},
		{"EXT4", extEgress},
	}
	ran := 0
	for _, e := range experiments {
		if *run != "" && !strings.EqualFold(*run, e.id) {
			continue
		}
		fmt.Printf("===== %s =====\n", e.id)
		if err := e.fn(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matches %q\n", *run)
		os.Exit(2)
	}
}

func ex1Workload(seed int64) (*p2go.Program, *p2go.Config, *p2go.Trace, error) {
	w, err := workloads.Get("ex1")
	if err != nil {
		return nil, nil, nil, err
	}
	prog, err := p2go.ParseProgram(w.Source)
	if err != nil {
		return nil, nil, nil, err
	}
	trace, err := w.Trace(seed)
	if err != nil {
		return nil, nil, nil, err
	}
	return prog, w.Config(), trace, nil
}

// ex1HitRates reproduces the hit-rate annotation of Ex. 1.
func ex1HitRates(seed int64) error {
	prog, cfg, trace, err := ex1Workload(seed)
	if err != nil {
		return err
	}
	prof, err := p2go.RunProfile(prog, cfg, trace)
	if err != nil {
		return err
	}
	paper := []struct {
		table string
		rate  float64
	}{
		{"IPv4", 1.00}, {"ACL_UDP", 0.08}, {"ACL_DHCP", 0.14},
		{"Sketch_1", 0.02}, {"Sketch_2", 0.02}, {"Sketch_Min", 0.02},
		{"DNS_Drop", 0.01},
	}
	fmt.Println("Ex. 1 per-table hit rates (paper annotation vs measured):")
	fmt.Printf("  %-12s %8s %10s\n", "table", "paper", "measured")
	for _, p := range paper {
		fmt.Printf("  %-12s %7.0f%% %9.2f%%\n", p.table, 100*p.rate, 100*prof.HitRate(p.table))
	}
	return nil
}

// fig1DependencyGraph reproduces Fig. 1.
func fig1DependencyGraph(seed int64) error {
	prog, _, _, err := ex1Workload(seed)
	if err != nil {
		return err
	}
	res, err := p2go.Compile(prog, p2go.DefaultTarget())
	if err != nil {
		return err
	}
	fmt.Println("Ex. 1 dependency graph (paper Fig. 1):")
	for _, e := range res.Deps.Edges {
		kinds := e.Kinds()
		names := make([]string, len(kinds))
		for i, k := range kinds {
			names[i] = k.String()
		}
		fmt.Printf("  %-12s -> %-12s %v\n", e.From, e.To, names)
	}
	fmt.Println("Graphviz rendering (style-matched to Fig. 1):")
	fmt.Print(res.Deps.Dot())
	return nil
}

// tab1NonExclusiveSets reproduces Table 1.
func tab1NonExclusiveSets(seed int64) error {
	prog, cfg, trace, err := ex1Workload(seed)
	if err != nil {
		return err
	}
	prof, err := p2go.RunProfile(prog, cfg, trace)
	if err != nil {
		return err
	}
	fmt.Println("Sets of non-exclusive actions (paper Table 1: four sets):")
	sets := prof.NonExclusiveSets(2)
	for _, s := range sets {
		fmt.Printf("  {%s}  (%d packets)\n", strings.Join(s.Members, ", "), s.Count)
	}
	fmt.Printf("measured distinct sets: %d (paper: 4)\n", len(sets))
	return nil
}

// tab2StageHistory reproduces Table 2.
func tab2StageHistory(seed int64) error {
	prog, cfg, trace, err := ex1Workload(seed)
	if err != nil {
		return err
	}
	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		return err
	}
	fmt.Println("Ex. 1 stage history (paper Table 2: 8 -> 7 -> 6 -> 3):")
	fmt.Print(p2go.RenderHistory(res.History))
	fmt.Println("\nobservations:")
	for _, o := range res.Observations {
		fmt.Println(" ", o)
	}
	report, err := p2go.VerifyEquivalence(res, cfg, trace)
	if err != nil {
		return err
	}
	fmt.Println("\nbehavior check:", report)
	return nil
}

// tab3Examples reproduces Table 3.
func tab3Examples(seed int64) error {
	rows := []struct {
		workload string
		paperOpt string
		before   int
		after    int
	}{
		{"natgre", "Removing Dependencies", 4, 3},
		{"sourceguard", "Reducing Memory", 5, 4},
		{"failure", "Offloading Code", 4, 2},
	}
	fmt.Println("Paper Table 3 vs measured:")
	fmt.Printf("  %-18s %-22s %14s %14s\n", "example", "relevant optimization", "paper (b->a)", "measured (b->a)")
	for _, row := range rows {
		w, err := workloads.Get(row.workload)
		if err != nil {
			return err
		}
		prog, err := p2go.ParseProgram(w.Source)
		if err != nil {
			return err
		}
		trace, err := w.Trace(seed)
		if err != nil {
			return err
		}
		res, err := p2go.Optimize(prog, w.Config(), trace, p2go.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("  %-18s %-22s %8d -> %-3d %8d -> %-3d\n",
			row.workload, row.paperOpt, row.before, row.after,
			res.StagesBefore(), res.StagesAfter())
		for _, o := range res.Observations {
			if o.Accepted {
				fmt.Printf("      %s\n", o.Summary)
			}
		}
	}
	return nil
}

// ablOffloadFirst reproduces §2.2's phase-ordering argument.
func ablOffloadFirst(seed int64) error {
	prog, cfg, trace, err := ex1Workload(seed)
	if err != nil {
		return err
	}
	opt := core.New(core.Options{})
	before, err := opt.OffloadCandidates(prog, cfg, trace)
	if err != nil {
		return err
	}
	partial, err := p2go.Optimize(prog, cfg, trace, p2go.Options{DisablePhase4: true})
	if err != nil {
		return err
	}
	after, err := opt.OffloadCandidates(partial.Optimized, partial.OptimizedConfig, trace)
	if err != nil {
		return err
	}
	show := func(label string, reports []core.CandidateReport) {
		sort.Slice(reports, func(i, j int) bool { return reports[i].Redirected < reports[j].Redirected })
		fmt.Println(label)
		for _, rep := range reports {
			if rep.StagesSaved < 1 {
				continue
			}
			fmt.Printf("  saves %d stage(s), redirects %5.2f%%: {%s}\n",
				rep.StagesSaved, 100*rep.RedirectFrac, strings.Join(rep.Segment.Tables, ", "))
		}
	}
	fmt.Println("Phase-ordering ablation (§2.2): offloading the two ACLs is tempting before")
	fmt.Println("Phase 2 (they occupy two stages) but pointless after (they share one stage).")
	show("viable offload candidates BEFORE any optimization:", before)
	show("viable offload candidates AFTER Phases 2+3:", after)
	return nil
}

// ablCMSShrink reproduces §3.3's discard decision.
func ablCMSShrink(seed int64) error {
	prog, cfg, trace, err := ex1Workload(seed)
	if err != nil {
		return err
	}
	base, err := p2go.RunProfile(prog, cfg, trace)
	if err != nil {
		return err
	}
	reduced := p4.Clone(prog)
	reduced.Register("cms_r1").InstanceCount = programs.Ex1ReducedSketchCells
	act := reduced.Action("sketch1_count")
	for _, call := range act.Body {
		if call.Name == p4.PrimHashOffset {
			call.Args[3] = p4.IntLit{Value: uint64(programs.Ex1ReducedSketchCells)}
		}
	}
	redProf, err := p2go.RunProfile(reduced, cfg, trace)
	if err != nil {
		return err
	}
	fmt.Printf("CMS-shrink ablation (§3.3): Sketch_1 row %d -> %d cells\n",
		programs.Ex1SketchCells, programs.Ex1ReducedSketchCells)
	fmt.Printf("  DNS_Drop hits: %d (original) vs %d (reduced) — over-counting detected: %v\n",
		base.Hits["DNS_Drop"], redProf.Hits["DNS_Drop"], base.Hits["DNS_Drop"] != redProf.Hits["DNS_Drop"])
	fmt.Printf("  profile diff: %s\n", base.Diff(redProf))
	return nil
}

// ablP5Baseline contrasts the P5-style baseline with P2GO.
func ablP5Baseline(seed int64) error {
	prog, cfg, trace, err := ex1Workload(seed)
	if err != nil {
		return err
	}
	policy := p5.NewPolicy(map[string][]string{
		"routing":    {"IPv4"},
		"udp-acl":    {"ACL_UDP"},
		"dhcp-guard": {"ACL_DHCP"},
		"dns-limit":  {"Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop"},
	})
	p5Res, err := p5.Optimize(prog, policy, tofino.DefaultTarget())
	if err != nil {
		return err
	}
	p2goRes, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		return err
	}
	fmt.Println("P5 baseline vs P2GO on Ex. 1 (all features used by policy):")
	fmt.Printf("  P5   : %d -> %d stages (policy-driven: nothing unused, nothing removed)\n",
		p5Res.StagesBefore, p5Res.StagesAfter)
	fmt.Printf("  P2GO : %d -> %d stages (profile-guided)\n",
		p2goRes.StagesBefore(), p2goRes.StagesAfter())
	return nil
}

// extGuards demonstrates §3.2's runtime dependency-violation detection.
func extGuards(seed int64) error {
	prog, cfg, trace, err := ex1Workload(seed)
	if err != nil {
		return err
	}
	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{InsertDependencyGuards: true})
	if err != nil {
		return err
	}
	fmt.Println("Runtime violation detectors (§3.2 alternative approach):")
	for _, g := range res.Guards {
		fmt.Printf("  watching removed dependency %s -> %s via table %s (register %s)\n",
			g.From, g.To, g.Table, g.Register)
	}
	fmt.Printf("pipeline with detectors: %d -> %d stages (detectors are free)\n",
		res.StagesBefore(), res.StagesAfter())
	return nil
}

// extOnline demonstrates §6's dynamic-compilation loop in numbers.
func extOnline(seed int64) error {
	prog, cfg, trace, err := ex1Workload(seed)
	if err != nil {
		return err
	}
	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		return err
	}
	mon, err := p2go.NewOnlineMonitor(res.Optimized, res.OptimizedConfig, res.FinalProfile,
		p2go.OnlineConfig{WindowSize: 5000, SampleEvery: 4})
	if err != nil {
		return err
	}
	fresh, err := workloads.Get("ex1")
	if err != nil {
		return err
	}
	t2, err := fresh.Trace(seed + 1)
	if err != nil {
		return err
	}
	for _, pkt := range t2.Packets {
		if _, err := mon.Process(simInput(pkt)); err != nil {
			return err
		}
	}
	fmt.Printf("Online profiling (§6 dynamic compilation): %d windows at 1-in-4 sampling, stale=%v\n",
		mon.Windows(), mon.Stale())
	fmt.Println("(see examples/adaptive for the drift + re-optimization loop)")
	return nil
}

// extNetwork demonstrates §6's network-wide direction: per-device traces
// from a two-switch topology.
func extNetwork(seed int64) error {
	fmt.Println("Network-wide demonstrator (§6): see examples/network —")
	fmt.Println("  edge (Ex. 1 firewall) + core router, enterprise trace injected at the edge;")
	fmt.Println("  per-device traces collected in-network; fleet total 9 -> 4 stages.")
	return nil
}

// extEgress demonstrates the egress pipeline model.
func extEgress(seed int64) error {
	src := `
header_type m_t { fields { klass : 8; } }
metadata m_t m;
action route(p) { modify_field(standard_metadata.egress_spec, p); }
action eg_drop_a() { drop(); }
action eg_drop_b() { drop(); }
table ing_route { actions { route; } default_action : route(2); }
table eg_acl_a { reads { m.klass : exact; } actions { eg_drop_a; } size : 8; }
table eg_acl_b { reads { standard_metadata.egress_port : exact; } actions { eg_drop_b; } size : 8; }
control ingress { apply(ing_route); }
control egress { apply(eg_acl_a); apply(eg_acl_b); }
`
	prog, err := p2go.ParseProgram(src)
	if err != nil {
		return err
	}
	res, err := p2go.Compile(prog, p2go.DefaultTarget())
	if err != nil {
		return err
	}
	fmt.Println("Egress pipeline model (§2.1 'an ingress and egress pipeline'):")
	fmt.Print(res.Mapping.Render())
	return nil
}

// ablDoesNotFit reproduces §2.2's "what if the program does not fit?".
func ablDoesNotFit(seed int64) error {
	w, err := workloads.Get("stress")
	if err != nil {
		return err
	}
	prog, err := p2go.ParseProgram(w.Source)
	if err != nil {
		return err
	}
	trace, err := w.Trace(seed)
	if err != nil {
		return err
	}
	res, err := p2go.Optimize(prog, w.Config(), trace, p2go.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("Does-not-fit ablation (§2.2): %d-deep ACL chain vs %d physical stages\n",
		programs.StressChainLength, p2go.DefaultTarget().Stages)
	fmt.Print(p2go.RenderHistory(res.History))
	return nil
}

// simInput converts a trace packet.
func simInput(p trafficgen.Packet) sim.Input {
	return sim.Input{Port: p.Port, Data: p.Data}
}
