package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"p2go"
	"p2go/internal/workloads"
)

// BenchResult is one micro-benchmark's measurement. The fields mirror the
// `go test -bench` vocabulary (iterations, ns/op) plus the quantities the
// paper's evaluation cares about: simulator throughput and pipeline
// lengths before/after optimization.
type BenchResult struct {
	Name       string  `json:"name"`
	Workload   string  `json:"workload"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// PacketsPerSec is the replay throughput, for trace-replay benchmarks.
	PacketsPerSec float64 `json:"packets_per_sec,omitempty"`
	// StagesBefore/StagesAfter are the pipeline lengths around the full
	// optimization, for optimize benchmarks.
	StagesBefore int `json:"stages_before,omitempty"`
	StagesAfter  int `json:"stages_after,omitempty"`
}

// BenchFile is the schema of the -bench output (BENCH_p2go.json).
type BenchFile struct {
	Seed       int64         `json:"seed"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchWorkloads are the workloads the suite measures: the paper's running
// example plus the three Table 3 programs.
var benchWorkloads = []string{"ex1", "natgre", "sourceguard", "failure"}

// runBench runs the micro-benchmark suite and writes the JSON results to
// path. Three benchmarks run per workload: compile (stage allocation),
// profile (instrument + trace replay, reporting packets/sec), and optimize
// (the full four-phase pipeline, reporting the stage reduction).
func runBench(path string, seed int64) error {
	out := BenchFile{Seed: seed}
	for _, name := range benchWorkloads {
		w, err := workloads.Get(name)
		if err != nil {
			return err
		}
		prog, err := p2go.ParseProgram(w.Source)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		cfg := w.Config()
		trace, err := w.Trace(seed)
		if err != nil {
			return err
		}

		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p2go.Compile(prog, p2go.DefaultTarget()); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name: "compile", Workload: name,
			Iterations: r.N, NsPerOp: float64(r.NsPerOp()),
		})
		fmt.Printf("  compile/%-12s %10d iters  %12.0f ns/op\n", name, r.N, float64(r.NsPerOp()))

		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p2go.RunProfile(prog, cfg, trace); err != nil {
					b.Fatal(err)
				}
			}
		})
		pps := 0.0
		if r.T > 0 {
			pps = float64(r.N) * float64(len(trace.Packets)) / r.T.Seconds()
		}
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name: "profile", Workload: name,
			Iterations: r.N, NsPerOp: float64(r.NsPerOp()), PacketsPerSec: pps,
		})
		fmt.Printf("  profile/%-12s %10d iters  %12.0f ns/op  %10.0f packets/sec\n",
			name, r.N, float64(r.NsPerOp()), pps)

		var before, after int
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
				if err != nil {
					b.Fatal(err)
				}
				before, after = res.StagesBefore(), res.StagesAfter()
			}
		})
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name: "optimize", Workload: name,
			Iterations: r.N, NsPerOp: float64(r.NsPerOp()),
			StagesBefore: before, StagesAfter: after,
		})
		fmt.Printf("  optimize/%-11s %10d iters  %12.0f ns/op  stages %d -> %d\n",
			name, r.N, float64(r.NsPerOp()), before, after)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
