package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"p2go"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/trafficgen"
	"p2go/internal/workloads"
)

// BenchResult is one micro-benchmark's measurement. The fields mirror the
// `go test -bench` vocabulary (iterations, ns/op) plus the quantities the
// paper's evaluation cares about: simulator throughput and pipeline
// lengths before/after optimization.
type BenchResult struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	// Parallelism is the worker count the benchmark ran with: 1 for the
	// sequential baselines, the shard count for the replay family, and
	// the machine's CPU count for the default optimize run. 0 means the
	// knob does not apply (compile).
	Parallelism int     `json:"parallelism,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	// PacketsPerSec is the replay throughput, for trace-replay benchmarks.
	PacketsPerSec float64 `json:"packets_per_sec,omitempty"`
	// StagesBefore/StagesAfter are the pipeline lengths around the full
	// optimization, for optimize benchmarks.
	StagesBefore int `json:"stages_before,omitempty"`
	StagesAfter  int `json:"stages_after,omitempty"`
}

// BenchFile is the schema of the -bench output (BENCH_p2go.json).
type BenchFile struct {
	Seed       int64         `json:"seed"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchWorkloads are the workloads the suite measures: the paper's running
// example plus the three Table 3 programs.
var benchWorkloads = []string{"ex1", "natgre", "sourceguard", "failure"}

// replayShardCounts is the sharded-replay benchmark family: the sequential
// baseline plus the shard counts the EXPERIMENTS.md scaling table quotes.
var replayShardCounts = []int{1, 2, 4}

// maxRegression is the tolerated replay-throughput loss against a
// committed baseline before -bench-baseline fails the run (CI smoke).
const maxRegression = 0.30

// minEngineSpeedup is the compiled-engine bar enforced under
// -bench-baseline: single-shard compiled replay must beat the interpreter
// measured in the same run by at least this factor. Comparing within one
// run makes the guard machine-independent, unlike the absolute baseline.
const minEngineSpeedup = 1.5

// runBench runs the micro-benchmark suite and writes the JSON results to
// path. Per workload it measures: compile (stage allocation), profile
// (instrument + sequential trace replay, reporting packets/sec), replay at
// each shard count (the parallel engine; stateful workloads fall back and
// stay flat), and optimize (the full four-phase pipeline with the default
// parallelism, reporting the stage reduction). only, when non-empty,
// restricts the run to that workload; baselinePath, when set, fails the
// run if any replay throughput regressed more than 30% vs the baseline.
func runBench(path string, seed int64, only, baselinePath string) error {
	out := BenchFile{Seed: seed}
	ran := 0
	for _, name := range benchWorkloads {
		if only != "" && only != name {
			continue
		}
		ran++
		w, err := workloads.Get(name)
		if err != nil {
			return err
		}
		prog, err := p2go.ParseProgram(w.Source)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		cfg := w.Config()
		trace, err := w.Trace(seed)
		if err != nil {
			return err
		}

		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p2go.Compile(prog, p2go.DefaultTarget()); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name: "compile", Workload: name,
			Iterations: r.N, NsPerOp: float64(r.NsPerOp()),
		})
		fmt.Printf("  compile/%-12s %10d iters  %12.0f ns/op\n", name, r.N, float64(r.NsPerOp()))

		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p2go.RunProfile(prog, cfg, trace); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name: "profile", Workload: name, Parallelism: 1,
			Iterations: r.N, NsPerOp: float64(r.NsPerOp()),
			PacketsPerSec: replayRate(r, len(trace.Packets)),
		})
		fmt.Printf("  profile/%-12s %10d iters  %12.0f ns/op  %10.0f packets/sec\n",
			name, r.N, float64(r.NsPerOp()), replayRate(r, len(trace.Packets)))

		// Replay family: the sharded engine alone (instrumentation done
		// once, outside the loop), across shard counts. Stateful programs
		// fall back to sequential replay, so their rows stay flat — that
		// is the documented behavior, not a measurement error.
		profiler, err := profile.NewProfiler(p4.MustParse(w.Source), cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		var compiledP1 float64
		for _, shards := range replayShardCounts {
			shards := shards
			r = testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := profiler.RunSharded(trace, shards); err != nil {
						b.Fatal(err)
					}
				}
			})
			rate := replayRate(r, len(trace.Packets))
			if shards == 1 {
				compiledP1 = rate
			}
			out.Benchmarks = append(out.Benchmarks, BenchResult{
				Name: "replay", Workload: name, Parallelism: shards,
				Iterations: r.N, NsPerOp: float64(r.NsPerOp()),
				PacketsPerSec: rate,
			})
			fmt.Printf("  replay/%-9s x%-2d %10d iters  %12.0f ns/op  %10.0f packets/sec\n",
				name, shards, r.N, float64(r.NsPerOp()), rate)
		}

		// Interpreter reference row: the tree-walking engine, sequential, no
		// dedup — the before side of the compiled-engine speedup, measured
		// in the same run so the comparison is machine-independent.
		interpOpts := profile.RunOptions{Shards: 1, Interpret: true, NoDedup: true}
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := profiler.RunWith(context.Background(), trace, interpOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
		interpRate := replayRate(r, len(trace.Packets))
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name: "replay-interp", Workload: name, Parallelism: 1,
			Iterations: r.N, NsPerOp: float64(r.NsPerOp()),
			PacketsPerSec: interpRate,
		})
		speedup := 0.0
		if interpRate > 0 {
			speedup = compiledP1 / interpRate
		}
		fmt.Printf("  replay-interp/%-6s %10d iters  %12.0f ns/op  %10.0f packets/sec  (compiled x%.1f)\n",
			name, r.N, float64(r.NsPerOp()), interpRate, speedup)
		if baselinePath != "" && speedup < minEngineSpeedup {
			return fmt.Errorf("%s: compiled replay only %.2fx the interpreter (floor %.1fx): %.0f vs %.0f packets/sec",
				name, speedup, minEngineSpeedup, compiledP1, interpRate)
		}

		var before, after int
		defaultPar := profile.DefaultShards()
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
				if err != nil {
					b.Fatal(err)
				}
				before, after = res.StagesBefore(), res.StagesAfter()
			}
		})
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name: "optimize", Workload: name, Parallelism: defaultPar,
			Iterations: r.N, NsPerOp: float64(r.NsPerOp()),
			StagesBefore: before, StagesAfter: after,
		})
		fmt.Printf("  optimize/%-11s %10d iters  %12.0f ns/op  stages %d -> %d\n",
			name, r.N, float64(r.NsPerOp()), before, after)
	}

	// Zipf flow-popularity family: a heavy-tailed TCP trace (20k packets,
	// ~1k distinct flows) through the stateless quickstart router, with
	// flow deduplication on and off. The dedup row replays O(unique flows)
	// representatives instead of O(packets), which is the effect the pair
	// quantifies; the rows share every other knob (compiled engine, one
	// shard) so the ratio isolates dedup.
	if only == "" || only == "zipf" {
		ran++
		w, err := workloads.Get("quickstart")
		if err != nil {
			return err
		}
		ztrace := trafficgen.ZipfTCPTrace(trafficgen.ZipfSpec{Seed: seed})
		profiler, err := profile.NewProfiler(p4.MustParse(w.Source), w.Config())
		if err != nil {
			return err
		}
		rates := map[bool]float64{}
		unique := 0
		for _, noDedup := range []bool{true, false} {
			noDedup := noDedup
			opts := profile.RunOptions{Shards: 1, NoDedup: noDedup}
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pf, err := profiler.RunWith(context.Background(), ztrace, opts)
					if err != nil {
						b.Fatal(err)
					}
					if !noDedup && pf.Engine != nil {
						unique = pf.Engine.UniquePackets
					}
				}
			})
			rate := replayRate(r, len(ztrace.Packets))
			rates[noDedup] = rate
			rowName := "replay-zipf-dedup"
			if noDedup {
				rowName = "replay-zipf-nodedup"
			}
			out.Benchmarks = append(out.Benchmarks, BenchResult{
				Name: rowName, Workload: "zipf", Parallelism: 1,
				Iterations: r.N, NsPerOp: float64(r.NsPerOp()),
				PacketsPerSec: rate,
			})
			fmt.Printf("  %-21s %10d iters  %12.0f ns/op  %10.0f packets/sec\n",
				rowName, r.N, float64(r.NsPerOp()), rate)
		}
		if rates[true] > 0 {
			fmt.Printf("  zipf flow dedup: %d unique of %d packets, x%.1f throughput\n",
				unique, len(ztrace.Packets), rates[false]/rates[true])
		}
	}

	if ran == 0 {
		return fmt.Errorf("no benchmark workload matches %q", only)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)

	if baselinePath != "" {
		return checkBaseline(out, baselinePath)
	}
	return nil
}

// replayRate converts a replay benchmark into packets/sec.
func replayRate(r testing.BenchmarkResult, packets int) float64 {
	if r.T <= 0 {
		return 0
	}
	return float64(r.N) * float64(packets) / r.T.Seconds()
}

// checkBaseline compares every throughput row against the committed
// baseline and fails on a >30% regression. Rows absent from the baseline
// (new benchmarks, different machine class) are skipped; throughput is
// machine-dependent, so the check only guards against relative collapse.
func checkBaseline(out BenchFile, baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base BenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	key := func(b BenchResult) string {
		return fmt.Sprintf("%s/%s/p%d", b.Name, b.Workload, b.Parallelism)
	}
	want := map[string]float64{}
	for _, b := range base.Benchmarks {
		if b.PacketsPerSec > 0 {
			want[key(b)] = b.PacketsPerSec
		}
	}
	var failures []string
	for _, b := range out.Benchmarks {
		if b.PacketsPerSec <= 0 {
			continue
		}
		baseline, ok := want[key(b)]
		if !ok {
			continue
		}
		floor := baseline * (1 - maxRegression)
		status := "ok"
		if b.PacketsPerSec < floor {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f packets/sec vs baseline %.0f (floor %.0f)",
				key(b), b.PacketsPerSec, baseline, floor))
		}
		fmt.Printf("  baseline %-24s %10.0f vs %10.0f  %s\n",
			key(b), b.PacketsPerSec, baseline, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("replay throughput regressed >%.0f%%:\n  %s",
			100*maxRegression, failures[0])
	}
	return nil
}
