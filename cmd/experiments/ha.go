// The -ha chaos proof: a fleet workload against an in-process replica
// group, with one replica kill -9'd mid-run. The surviving replicas must
// detect the death via lease expiry, reclaim the journaled job, finish
// the remaining device rows (completed rows come back from the shared
// spill), and produce a final report equivalent to an uninterrupted run.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"p2go/internal/cluster"
	"p2go/internal/fleet"
	"p2go/internal/report"
	"p2go/internal/service"
)

// haReplica is one in-process p2god replica: manager + cluster node +
// journal, all rooted in the shared group directory like N real daemons
// pointed at one -cluster-dir.
type haReplica struct {
	id   string
	node *cluster.Node
	m    *service.Manager
}

// runHAChaos runs the kill/takeover experiment and fails loudly on any
// divergence from the uninterrupted baseline.
func runHAChaos(short bool, seed int64) error {
	devices, replicas := 24, 3
	if short {
		devices, replicas = 10, 2
	}
	spec := fleet.Synthetic("quickstart", devices, seed, fleetPacketsPerDevice)
	spec.Name = "ha-chaos"

	// Uninterrupted baseline on a standalone daemon: the report every
	// chaos run must match (modulo timings, caching, and attribution).
	base := service.NewManager(service.ManagerConfig{Workers: 2, QueueDepth: 8})
	base.Start()
	baseline, err := runFleetJob(base, spec)
	if err != nil {
		return fmt.Errorf("baseline run: %w", err)
	}
	base.Drain(30 * time.Second)
	fmt.Printf("baseline: %d devices optimized, fleet stages %d -> %d\n",
		baseline.Optimized, baseline.StagesBefore, baseline.StagesAfter)

	// The replica group: short lease TTL so death detection fits a CI
	// run, background cluster loops on (production wiring, real clocks).
	dir, err := os.MkdirTemp("", "p2go-ha-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ttl := 400 * time.Millisecond
	group := make([]*haReplica, 0, replicas)
	for i := 0; i < replicas; i++ {
		id := fmt.Sprintf("r%d", i+1)
		node, err := cluster.Join(cluster.Config{Dir: dir, ID: id, TTL: ttl})
		if err != nil {
			return fmt.Errorf("join %s: %w", id, err)
		}
		jrnl, err := service.OpenJournal(node.JournalPath(id))
		if err != nil {
			return fmt.Errorf("journal %s: %w", id, err)
		}
		m := service.NewManager(service.ManagerConfig{
			Workers:    2,
			QueueDepth: 8,
			Journal:    jrnl,
			Cache:      service.NewCache(0, filepath.Join(dir, "spill")),
			Cluster:    node,
		})
		m.Start()
		group = append(group, &haReplica{id: id, node: node, m: m})
	}
	victim, survivors := group[0], group[1:]
	defer func() {
		for _, r := range survivors {
			r.m.Drain(30 * time.Second)
		}
	}()

	st, err := victim.m.Submit(service.JobSpec{Kind: "fleet", Fleet: &spec})
	if err != nil {
		return fmt.Errorf("submit to %s: %w", victim.id, err)
	}

	// Kill once the run is provably mid-flight: at least two device rows
	// journaled, with most of the fleet still uncomputed.
	killDeadline := time.Now().Add(2 * time.Minute)
	for {
		data, _ := os.ReadFile(victim.node.JournalPath(victim.id))
		if bytes.Count(data, []byte(`"op":"device"`)) >= 2 {
			break
		}
		if s, ok := victim.m.Get(st.ID, false); ok && s.State.Terminal() {
			return fmt.Errorf("fleet job finished before the kill landed; grow the fleet")
		}
		if time.Now().After(killDeadline) {
			return fmt.Errorf("fleet job %s never journaled device rows", st.ID)
		}
		time.Sleep(time.Millisecond)
	}
	killedAt := time.Now()
	victim.m.Kill()
	fmt.Printf("kill -9 %s mid-run (job %s, %d-device fleet, lease TTL %s)\n",
		victim.id, st.ID, devices, ttl)

	// A survivor's cluster loop must notice the expired membership lease,
	// reclaim the job from the victim's journal, and finish it under the
	// original ID.
	var haRes *report.FleetResult
	var finishedBy, takenOverFrom string
	awaitDeadline := time.Now().Add(5 * time.Minute)
	for haRes == nil {
		for _, r := range survivors {
			s, ok := r.m.Get(st.ID, true)
			if !ok || !s.State.Terminal() {
				continue
			}
			if s.State != service.StateDone {
				return fmt.Errorf("reclaimed job on %s: %s (%s)", r.id, s.State, s.Error)
			}
			var res report.FleetResult
			if err := json.Unmarshal(s.Result, &res); err != nil {
				return fmt.Errorf("reclaimed result: %w", err)
			}
			haRes, finishedBy, takenOverFrom = &res, r.id, s.TakenOverFrom
		}
		if haRes == nil {
			if time.Now().After(awaitDeadline) {
				return fmt.Errorf("no survivor completed job %s after the kill", st.ID)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	fmt.Printf("takeover: %s detected the death and completed %s (taken over from %q) %.2fs after the kill\n",
		finishedBy, st.ID, takenOverFrom, time.Since(killedAt).Seconds())

	// The proof: the survivor's report is equivalent to the baseline.
	if diffs := report.FleetEquivalent(baseline, haRes); len(diffs) > 0 {
		return fmt.Errorf("post-takeover report diverges from the uninterrupted run:\n  %s",
			strings.Join(diffs, "\n  "))
	}
	if takenOverFrom != victim.id {
		return fmt.Errorf("takeover attributed to %q, want %s", takenOverFrom, victim.id)
	}
	takeovers := 0
	for _, r := range survivors {
		takeovers += metricValue(r.m, "p2god_cluster_takeover_jobs_total")
	}
	if takeovers < 1 {
		return fmt.Errorf("no survivor counted a takeover")
	}
	cached := 0
	for _, d := range haRes.Devices {
		if d.Cached {
			cached++
		}
	}
	fmt.Printf("equivalence: report matches the baseline (%d devices; %d rows re-served from the shared spill, %d recomputed)\n",
		haRes.DeviceCount, cached, haRes.DeviceCount-cached)
	fmt.Printf("metrics: %d takeover(s) counted across %d survivor(s)\n", takeovers, len(survivors))
	return nil
}

// metricValue digs one counter out of a manager's Prometheus exposition.
func metricValue(m *service.Manager, name string) int {
	var buf bytes.Buffer
	m.Metrics().WritePrometheus(&buf, nil)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return int(v)
			}
		}
	}
	return 0
}
