package main

import "testing"

// TestAllExperimentsRun executes every experiment once: the harness must
// regenerate each table/figure without error. (The numeric assertions live
// in the package tests and benchmarks; this pins the CLI paths.)
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight")
	}
	for _, e := range []struct {
		id string
		fn func(int64) error
	}{
		{"EX1", ex1HitRates},
		{"FIG1", fig1DependencyGraph},
		{"TAB1", tab1NonExclusiveSets},
		{"TAB2", tab2StageHistory},
		{"TAB3", tab3Examples},
		{"ABL1", ablOffloadFirst},
		{"ABL2", ablCMSShrink},
		{"ABL3", ablP5Baseline},
		{"ABL4", ablDoesNotFit},
		{"EXT1", extGuards},
		{"EXT2", extOnline},
		{"EXT3", extNetwork},
		{"EXT4", extEgress},
	} {
		e := e
		t.Run(e.id, func(t *testing.T) {
			if err := e.fn(1); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
		})
	}
}
