// The -fleet load test: thousands of device-jobs through an in-process
// p2god manager, demonstrating the cross-device analysis cache (a
// homogeneous fleet compiles its program once, not once per device) and
// typed per-device fault attribution under data-plane fault injection.
package main

import (
	"encoding/json"
	"fmt"
	"time"

	"p2go/internal/faults"
	"p2go/internal/fleet"
	"p2go/internal/report"
	"p2go/internal/service"
)

const fleetPacketsPerDevice = 40

// runFleetLoad drives the two fleet experiments:
//
//  1. Cross-device dedup: one fleet per size on a fresh daemon; compiles
//     stay flat while devices grow (the EXPERIMENTS.md table).
//  2. Load under faults: every device-job through one daemon with a
//     data-plane fault window, checking that failures are attributed to
//     device rows rather than failing whole fleet jobs.
func runFleetLoad(devices int, short bool, seed int64) error {
	sizes := []int{1, 8, 64, 512}
	batch := 256
	if short {
		sizes = []int{1, 4, 16}
		batch = 32
		if devices > 64 {
			devices = 64
		}
	}

	// A single device already compiles several times — the optimizer
	// probes candidate programs — so the dedup claim is "compiles stay
	// flat as devices grow", measured against the size-1 baseline.
	fmt.Println("Cross-device compile dedup (one fleet per row, fresh daemon each):")
	fmt.Printf("  %8s %10s %12s %12s %14s\n", "devices", "compiles", "cache hits", "profiles", "stages (fleet)")
	solo := 0
	for _, n := range sizes {
		m := service.NewManager(service.ManagerConfig{Workers: 2, QueueDepth: 4})
		m.Start()
		res, err := runFleetJob(m, fleet.Synthetic("quickstart", n, seed, fleetPacketsPerDevice))
		if err != nil {
			return err
		}
		m.Drain(30 * time.Second)
		if n == 1 {
			solo = res.CompileMisses
		} else if res.CompileMisses >= n*solo {
			return fmt.Errorf("fleet of %d compiled %d times (solo device: %d); the shared analysis cache is not deduplicating",
				n, res.CompileMisses, solo)
		}
		fmt.Printf("  %8d %10d %12d %12d %8d -> %-4d\n",
			n, res.CompileMisses, res.CompileHits, res.ProfileMisses, res.StagesBefore, res.StagesAfter)
	}

	// One daemon, many fleet jobs, a fault window over the early
	// data-plane events: the affected devices fail with attributed
	// errors while every job still completes.
	set := faults.MustSet(faults.Spec{
		Point: faults.SimStep,
		From:  fleetPacketsPerDevice,
		To:    3 * fleetPacketsPerDevice,
	})
	m := service.NewManager(service.ManagerConfig{Workers: 4, QueueDepth: 64, Faults: set})
	m.Start()
	defer m.Drain(60 * time.Second)

	start := time.Now()
	var ids []string
	for submitted := 0; submitted < devices; submitted += batch {
		n := batch
		if devices-submitted < n {
			n = devices - submitted
		}
		spec := fleet.Synthetic("quickstart", n, seed+int64(submitted), fleetPacketsPerDevice)
		spec.Name = fmt.Sprintf("load-%04d", submitted)
		st, err := m.Submit(service.JobSpec{Kind: "fleet", Fleet: &spec})
		if err != nil {
			return fmt.Errorf("submit %s: %w", spec.Name, err)
		}
		ids = append(ids, st.ID)
	}
	var optimized, skipped, failed, compiles int
	for _, id := range ids {
		res, err := awaitFleetJob(m, id)
		if err != nil {
			return err
		}
		optimized += res.Optimized
		skipped += res.Skipped
		failed += res.Failed
		compiles += res.CompileMisses
	}
	elapsed := time.Since(start)
	if optimized+skipped+failed != devices {
		return fmt.Errorf("device rows do not add up: %d+%d+%d != %d", optimized, skipped, failed, devices)
	}
	if failed == 0 {
		return fmt.Errorf("the fault window [%d,%d) hit no device; attribution untested", fleetPacketsPerDevice, 3*fleetPacketsPerDevice)
	}
	fmt.Printf("\nLoad under faults: %d device-jobs across %d fleets in %.2fs (%.0f devices/s)\n",
		devices, len(ids), elapsed.Seconds(), float64(devices)/elapsed.Seconds())
	fmt.Printf("  optimized %d, skipped %d, failed %d (fault window [%d,%d) over data-plane events)\n",
		optimized, skipped, failed, fleetPacketsPerDevice, 3*fleetPacketsPerDevice)
	fmt.Printf("  compiles across the whole run: %d (daemon-wide analysis cache; %d would be uncached)\n",
		compiles, devices)
	return nil
}

// runFleetJob submits one fleet spec and waits for its aggregated result.
func runFleetJob(m *service.Manager, spec fleet.Spec) (*report.FleetResult, error) {
	st, err := m.Submit(service.JobSpec{Kind: "fleet", Fleet: &spec})
	if err != nil {
		return nil, err
	}
	return awaitFleetJob(m, st.ID)
}

// awaitFleetJob polls the manager until the fleet job is terminal.
func awaitFleetJob(m *service.Manager, id string) (*report.FleetResult, error) {
	deadline := time.Now().Add(10 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id, true)
		if !ok {
			return nil, fmt.Errorf("fleet job %s vanished", id)
		}
		if st.State.Terminal() {
			if st.State != service.StateDone {
				return nil, fmt.Errorf("fleet job %s %s: %s", id, st.State, st.Error)
			}
			var res report.FleetResult
			if err := json.Unmarshal(st.Result, &res); err != nil {
				return nil, fmt.Errorf("fleet job %s result: %w", id, err)
			}
			return &res, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("fleet job %s did not finish in time", id)
}
