// Self-hosted PGO (-pgo): the optimizer takes its own medicine. The
// bundled workloads run under CPU profiling, the per-workload pprof
// files merge into one default.pgo (committed at the repo root and in
// cmd/p2god, where `go build -pgo=auto` picks it up), the tree is
// rebuilt with the profile, and a before/after replay benchmark pair is
// appended to BENCH_p2go.json — the same capture→merge→rebuild loop
// P2GO applies to P4 programs, closed over the daemon itself.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"p2go"
	"p2go/internal/fleet"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/service"
	"p2go/internal/workloads"
)

// pgoOptions collects the -pgo* flags.
type pgoOptions struct {
	short bool   // CI smoke: shorter captures, smaller fleet
	out   string // merged profile destination (the committed default.pgo)
	dir   string // per-workload capture directory
	bench string // BENCH_p2go.json to append before/after rows to ("" skips)
	seed  int64
}

// pgoCaptureSeconds is how long each workload runs under the CPU
// profiler; at the default 100Hz sampling that is several hundred
// samples per workload.
func (o pgoOptions) captureSeconds() time.Duration {
	if o.short {
		return 2 * time.Second
	}
	return 6 * time.Second
}

func (o pgoOptions) fleetDevices() int {
	if o.short {
		return 4
	}
	return 8
}

// runPGO drives the whole loop: capture, merge, rebuild, measure.
func runPGO(o pgoOptions) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	if o.dir == "" {
		o.dir = filepath.Join(root, "pgo-profiles")
	}
	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return err
	}
	if o.out == "" {
		o.out = filepath.Join(root, "default.pgo")
	}

	// 1. Capture: each bundled workload under its own CPU profile, the
	// dtail-style per-command capture (doc/pgo_implementation.md): distinct
	// workloads exercise distinct hot paths, and merging weighted captures
	// beats profiling one unrepresentative run.
	captures, err := capturePGOWorkloads(o)
	if err != nil {
		return err
	}

	// 2. Merge with the toolchain's own pprof (offline, no extra deps):
	// `go tool pprof -proto a b c` sums the samples into one profile.
	merged, err := mergeProfiles(captures)
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, merged, 0o644); err != nil {
		return err
	}
	fmt.Printf("  merged %d captures -> %s (%d bytes)\n", len(captures), o.out, len(merged))
	// -pgo=auto only finds default.pgo in a main package's own directory;
	// a copy next to cmd/p2god makes plain `go build ./cmd/p2god` profile-
	// guided with no flags at all.
	daemonPGO := filepath.Join(root, "cmd", "p2god", "default.pgo")
	if err := os.WriteFile(daemonPGO, merged, 0o644); err != nil {
		return err
	}
	fmt.Printf("  copied -> %s (picked up by 'go build -pgo=auto ./cmd/p2god')\n", daemonPGO)

	// 3. Rebuild the whole tree with the profile — the acceptance gate CI
	// re-runs — so a profile the compiler cannot ingest fails here, not in
	// some later build.
	for _, args := range [][]string{
		{"build", "-pgo=auto", "./..."},
		{"build", "-pgo=" + o.out, "./..."},
	} {
		if out, err := runGo(root, args...); err != nil {
			return fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
		}
	}
	fmt.Println("  go build -pgo=auto ./... ok; go build -pgo=" + filepath.Base(o.out) + " ./... ok")

	// 4. A/B: build the experiments binary twice (PGO off / on) and run
	// the replay benchmark in each, so the measured delta isolates the
	// compiler's profile-guided decisions.
	before, after, err := abReplayBench(root, o.out)
	if err != nil {
		return err
	}
	fmt.Println("  replay throughput, PGO off vs on:")
	fmt.Printf("  %-12s %14s %14s %8s\n", "workload", "off (pkt/s)", "on (pkt/s)", "delta")
	for i, b := range before.Benchmarks {
		a := after.Benchmarks[i]
		delta := 0.0
		if b.PacketsPerSec > 0 {
			delta = (a.PacketsPerSec - b.PacketsPerSec) / b.PacketsPerSec * 100
		}
		fmt.Printf("  %-12s %14.0f %14.0f %+7.1f%%\n",
			b.Workload, b.PacketsPerSec, a.PacketsPerSec, delta)
	}

	// 5. Record the pair in the committed bench file. The rows use their
	// own name family (pgo-replay-*), so the -bench-baseline regression
	// guard — which keys on name/workload/parallelism — never confuses
	// them with the plain replay rows.
	if o.bench != "" {
		if err := appendPGORows(o.bench, before, after); err != nil {
			return err
		}
		fmt.Println("  appended before/after rows to", o.bench)
	}
	return nil
}

// pgoWorkloads are the capture scenarios: the paper's running example,
// the phase-ordering workload under its reordered schedule, and a small
// network-wide job through a real in-process manager (exercising the
// service/fleet dispatch paths single-workload runs never touch).
func capturePGOWorkloads(o pgoOptions) ([]string, error) {
	type scenario struct {
		name string
		run  func(deadline time.Time) error
	}
	optimizeLoop := func(workload string, passes []string) func(time.Time) error {
		return func(deadline time.Time) error {
			w, err := workloads.Get(workload)
			if err != nil {
				return err
			}
			prog, err := p2go.ParseProgram(w.Source)
			if err != nil {
				return err
			}
			trace, err := w.Trace(o.seed)
			if err != nil {
				return err
			}
			for time.Now().Before(deadline) {
				if _, err := p2go.Optimize(prog, w.Config(), trace, p2go.Options{Passes: passes}); err != nil {
					return err
				}
			}
			return nil
		}
	}
	scenarios := []scenario{
		{"ex1", optimizeLoop("ex1", nil)},
		{"l2l3_acl", optimizeLoop("l2l3_acl", []string{"phase4", "phase2", "phase3"})},
		{"fleet-short", func(deadline time.Time) error {
			m := service.NewManager(service.ManagerConfig{Workers: 2, QueueDepth: 8})
			m.Start()
			defer m.Drain(30 * time.Second)
			spec := fleet.Synthetic("quickstart", o.fleetDevices(), o.seed, fleetPacketsPerDevice)
			for time.Now().Before(deadline) {
				if _, err := runFleetJob(m, spec); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	var paths []string
	for _, sc := range scenarios {
		path := filepath.Join(o.dir, sc.name+".pprof")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		start := time.Now()
		runErr := sc.run(start.Add(o.captureSeconds()))
		pprof.StopCPUProfile()
		if cerr := f.Close(); runErr == nil {
			runErr = cerr
		}
		if runErr != nil {
			return nil, fmt.Errorf("capture %s: %w", sc.name, runErr)
		}
		fi, _ := os.Stat(path)
		fmt.Printf("  captured %-12s %8.1fs -> %s (%d bytes)\n",
			sc.name, time.Since(start).Seconds(), path, fi.Size())
		paths = append(paths, path)
	}
	return paths, nil
}

// mergeProfiles sums the captures with `go tool pprof -proto`.
func mergeProfiles(paths []string) ([]byte, error) {
	args := append([]string{"tool", "pprof", "-proto"}, paths...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go tool pprof -proto: %v\n%s", err, errb.String())
	}
	if out.Len() == 0 {
		return nil, fmt.Errorf("go tool pprof -proto produced an empty profile")
	}
	return out.Bytes(), nil
}

// abReplayBench builds the experiments binary without and with the
// profile, runs the hidden -pgo-replay-bench mode in each, and returns
// the two measurement files.
func abReplayBench(root, pgoFile string) (before, after BenchFile, err error) {
	tmp, err := os.MkdirTemp("", "p2go-pgo-*")
	if err != nil {
		return before, after, err
	}
	defer os.RemoveAll(tmp)
	builds := []struct {
		label, pgoFlag, bin, out string
	}{
		{"off", "-pgo=off", filepath.Join(tmp, "exp-off"), filepath.Join(tmp, "off.json")},
		{"on", "-pgo=" + pgoFile, filepath.Join(tmp, "exp-on"), filepath.Join(tmp, "on.json")},
	}
	results := make([]BenchFile, 2)
	for i, b := range builds {
		if out, err := runGo(root, "build", b.pgoFlag, "-o", b.bin, "./cmd/experiments"); err != nil {
			return before, after, fmt.Errorf("build (pgo %s): %v\n%s", b.label, err, out)
		}
		cmd := exec.Command(b.bin, "-pgo-replay-bench", b.out)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			return before, after, fmt.Errorf("replay bench (pgo %s): %v\n%s", b.label, err, out)
		}
		data, err := os.ReadFile(b.out)
		if err != nil {
			return before, after, err
		}
		if err := json.Unmarshal(data, &results[i]); err != nil {
			return before, after, fmt.Errorf("replay bench (pgo %s): %w", b.label, err)
		}
	}
	if len(results[0].Benchmarks) != len(results[1].Benchmarks) {
		return before, after, fmt.Errorf("A/B row mismatch: %d vs %d",
			len(results[0].Benchmarks), len(results[1].Benchmarks))
	}
	return results[0], results[1], nil
}

// pgoReplayWorkloads are the A/B measurement targets: the paper's
// running example and the pass-ordering workload — both dominated by
// the dispatch-heavy simulator hot path PGO inlining targets.
var pgoReplayWorkloads = []string{"ex1", "l2l3_acl"}

// runPGOReplayBench is the hidden child mode (-pgo-replay-bench <out>):
// sequential replay benchmarks, written as a BenchFile so the parent
// can diff two binaries' runs row by row.
func runPGOReplayBench(path string, seed int64) error {
	out := BenchFile{Seed: seed}
	for _, name := range pgoReplayWorkloads {
		w, err := workloads.Get(name)
		if err != nil {
			return err
		}
		trace, err := w.Trace(seed)
		if err != nil {
			return err
		}
		profiler, err := profile.NewProfiler(p4.MustParse(w.Source), w.Config())
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := profiler.RunSharded(trace, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name: "pgo-replay", Workload: name, Parallelism: 1,
			Iterations: r.N, NsPerOp: float64(r.NsPerOp()),
			PacketsPerSec: replayRate(r, len(trace.Packets)),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// appendPGORows rewrites benchPath with the A/B pair appended: prior
// pgo-replay-* rows are dropped first, so re-running -pgo replaces the
// measurement instead of accreting stale pairs.
func appendPGORows(benchPath string, before, after BenchFile) error {
	var file BenchFile
	if data, err := os.ReadFile(benchPath); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("%s: %w", benchPath, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	kept := file.Benchmarks[:0]
	for _, b := range file.Benchmarks {
		if !strings.HasPrefix(b.Name, "pgo-replay") {
			kept = append(kept, b)
		}
	}
	file.Benchmarks = kept
	rename := func(rows []BenchResult, name string) {
		for _, b := range rows {
			b.Name = name
			file.Benchmarks = append(file.Benchmarks, b)
		}
	}
	rename(before.Benchmarks, "pgo-replay-before")
	rename(after.Benchmarks, "pgo-replay-after")
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(benchPath, append(data, '\n'), 0o644)
}

// moduleRoot locates the repo root (where go.mod and the committed
// default.pgo live) so -pgo works from any working directory.
func moduleRoot() (string, error) {
	out, err := runGo("", "env", "GOMOD")
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v\n%s", err, out)
	}
	gomod := strings.TrimSpace(out)
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module (run from the p2go repo)")
	}
	return filepath.Dir(gomod), nil
}

// runGo runs the go tool in dir and returns its combined output.
func runGo(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}
