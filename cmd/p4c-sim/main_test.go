package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunWorkload(t *testing.T) {
	if err := run("natgre", "", false, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("ex1", "", true, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunProgramFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.p4")
	src := `
action a() { no_op(); }
table t { actions { a; } default_action : a; }
control ingress { apply(t); }
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, false, false, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("no-such-workload", "", false, false, 0); err == nil {
		t.Error("unknown workload should fail")
	}
	if err := run("", "/nonexistent/file.p4", false, false, 0); err == nil {
		t.Error("missing file should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.p4")
	if err := os.WriteFile(bad, []byte("not p4"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", bad, false, false, 0); err == nil {
		t.Error("invalid program should fail")
	}
}
