// Command p4c-sim is the standalone compiler driver: it checks a P4_14
// program, maps it onto the RMT target model, and prints the three
// artifacts the optimizer consumes — the stage mapping, the dependency
// graph (optionally as Graphviz), and the control graph's execution paths.
//
// Usage:
//
//	p4c-sim [-workload ex1 | -program file.p4] [-dot] [-paths] [-stages N]
package main

import (
	"flag"
	"fmt"
	"os"

	"p2go"
	"p2go/internal/tofino"
	"p2go/internal/workloads"
)

func main() {
	workload := flag.String("workload", "ex1", "named workload program")
	programFile := flag.String("program", "", "P4_14 program file (overrides the workload)")
	dot := flag.Bool("dot", false, "print the dependency graph in Graphviz format (Fig. 1)")
	paths := flag.Bool("paths", false, "print the control graph's execution paths")
	stages := flag.Int("stages", 0, "override the target's physical stage count")
	flag.Parse()

	if err := run(*workload, *programFile, *dot, *paths, *stages); err != nil {
		fmt.Fprintln(os.Stderr, "p4c-sim:", err)
		os.Exit(1)
	}
}

func run(workload, programFile string, dot, paths bool, stages int) error {
	src := ""
	if programFile != "" {
		data, err := os.ReadFile(programFile)
		if err != nil {
			return err
		}
		src = string(data)
	} else {
		w, err := workloads.Get(workload)
		if err != nil {
			return err
		}
		src = w.Source
	}
	prog, err := p2go.ParseProgram(src)
	if err != nil {
		return err
	}
	tgt := tofino.DefaultTarget()
	if stages > 0 {
		tgt.Stages = stages
	}
	res, err := p2go.Compile(prog, tgt)
	if err != nil {
		return err
	}
	fmt.Println("== stage mapping ==")
	fmt.Print(res.Mapping.Render())
	fmt.Println("\n== memory occupancy ==")
	for _, occ := range res.Mapping.Occupancy() {
		fmt.Printf("  stage %2d: SRAM %7d/%d  TCAM %6d/%d\n",
			occ.Stage, occ.SRAMUsed, tgt.StageSRAMBytes, occ.TCAMUsed, tgt.StageTCAMBytes)
	}
	fmt.Println("\n== dependency graph ==")
	if dot {
		fmt.Print(res.Deps.Dot())
	} else {
		for _, e := range res.Deps.Edges {
			kinds := e.Kinds()
			names := make([]string, len(kinds))
			for i, k := range kinds {
				names[i] = k.String()
			}
			fmt.Printf("  %s -> %s  (%v)\n", e.From, e.To, names)
		}
		if lp := res.Deps.LongestPaths(); len(lp) > 0 {
			fmt.Println("  longest path(s):")
			for _, p := range lp {
				fmt.Println("   ", p)
			}
		}
	}
	if paths {
		fmt.Println("\n== control graph (execution paths) ==")
		for _, p := range res.Paths {
			fmt.Println("  ", p)
		}
	}
	return nil
}
