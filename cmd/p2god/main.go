// Command p2god is the resident P2GO optimization service: it accepts
// profile/optimize jobs over HTTP, runs them on a bounded worker pool with
// per-job timeouts and cancellation, serves repeated work from a
// content-addressed artifact cache, and exposes Prometheus metrics.
//
// Usage:
//
//	p2god [-listen addr] [-workers N] [-queue N] [-job-timeout d]
//	      [-cache-entries N] [-cache-dir dir] [-drain-timeout d]
//	      [-journal path]
//
// Submit with curl (or `p2go submit`):
//
//	curl -s -X POST localhost:9095/jobs -d '{"kind":"optimize","workload":"ex1"}'
//	curl -s localhost:9095/jobs/j-000001
//	curl -s localhost:9095/metrics
//
// SIGINT/SIGTERM drain gracefully: the listener closes, queued jobs are
// requeued via the journal (canceled when -journal is unset), and running
// jobs get -drain-timeout to finish before their contexts are canceled.
// With -journal set, jobs that were queued or running when the process
// died — graceful drain or kill -9 alike — are recovered on the next
// start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"p2go/internal/service"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9095", "HTTP listen address")
	workers := flag.Int("workers", 2, "worker-pool size")
	queue := flag.Int("queue", 16, "job queue depth (submissions beyond it get 429)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job timeout (0 = none; jobs may request their own)")
	cacheEntries := flag.Int("cache-entries", 512, "artifact cache capacity (entries)")
	cacheDir := flag.String("cache-dir", "", "spill byte artifacts to this directory (optional)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long running jobs may finish on shutdown")
	journalPath := flag.String("journal", "", "crash-safe job journal; queued/running jobs are recovered from it on restart (optional)")
	flag.Parse()

	if err := run(*listen, *workers, *queue, *jobTimeout, *cacheEntries, *cacheDir, *drainTimeout, *journalPath); err != nil {
		fmt.Fprintln(os.Stderr, "p2god:", err)
		os.Exit(1)
	}
}

func run(listen string, workers, queue int, jobTimeout time.Duration,
	cacheEntries int, cacheDir string, drainTimeout time.Duration, journalPath string) error {
	var journal *service.Journal
	if journalPath != "" {
		var err error
		journal, err = service.OpenJournal(journalPath)
		if err != nil {
			return err
		}
		defer journal.Close()
	}
	m := service.NewManager(service.ManagerConfig{
		Workers:    workers,
		QueueDepth: queue,
		JobTimeout: jobTimeout,
		Cache:      service.NewCache(cacheEntries, cacheDir),
		Journal:    journal,
	})
	if journal != nil {
		pending, err := journal.Recover()
		if err != nil {
			return fmt.Errorf("journal recovery: %w", err)
		}
		if len(pending) > 0 {
			accepted, dropped := m.Requeue(pending)
			log.Printf("p2god recovered %d journaled job(s) (%d dropped)", accepted, dropped)
		}
	}
	m.Start()

	srv := &http.Server{Addr: listen, Handler: service.NewHandler(m)}
	errc := make(chan error, 1)
	go func() {
		log.Printf("p2god listening on %s (%d workers, queue %d)", listen, workers, queue)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("p2god draining (up to %s)...", drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("p2god: http shutdown: %v", err)
	}
	rep := m.Drain(drainTimeout)
	if len(rep.Requeued) > 0 {
		log.Printf("p2god requeued %d queued job(s) for recovery: %v", len(rep.Requeued), rep.Requeued)
	}
	if len(rep.Canceled) > 0 {
		log.Printf("p2god canceled %d queued job(s) (no -journal): %v", len(rep.Canceled), rep.Canceled)
	}
	log.Printf("p2god stopped")
	return <-errc
}
