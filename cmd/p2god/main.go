// Command p2god is the resident P2GO optimization service: it accepts
// profile/optimize jobs over HTTP, runs them on a bounded worker pool with
// per-job timeouts and cancellation, serves repeated work from a
// content-addressed artifact cache, and exposes Prometheus metrics and
// per-job execution traces. POST /fleets submits network-wide jobs: the
// daemon collects each device's observed traffic across the topology,
// optimizes every device against its own trace, and aggregates the rows
// into one fleet report — a daemon-wide analysis cache dedups compiles
// and profiles across devices and across fleet jobs, so homogeneous
// fleets compile each distinct program once.
//
// Usage:
//
//	p2god [-listen addr] [-workers N] [-queue N] [-job-timeout d]
//	      [-parallelism N] [-cache-entries N] [-cache-dir dir] [-drain-timeout d]
//	      [-journal path] [-trace-dir dir] [-pprof] [-log-level level]
//	      [-cluster-dir dir] [-replica-id id] [-peers addrs] [-lease-ttl d]
//	      [-profile-dir dir] [-profile-every d] [-profile-cpu d] [-profile-keep N]
//
// High availability: -cluster-dir joins the daemon to a replica group.
// Replicas of one group share the directory (and, by default, spill the
// artifact cache and journal into it), announce themselves with fsynced
// membership leases, guard each job with a per-digest ownership lease
// (TTL -lease-ttl, epoch-fenced), and reclaim accepted-but-unfinished
// jobs from peers whose lease expired — kill -9 one replica mid-job and
// a survivor completes it under the original job ID. -peers lists the
// replica set's HTTP addresses for clients (served at GET /cluster;
// `p2go -servers` routes jobs by digest and fails over automatically).
//
// Submit with curl (or `p2go submit`):
//
//	curl -s -X POST localhost:9095/jobs -d '{"kind":"optimize","workload":"ex1"}'
//	curl -s localhost:9095/jobs/j-000001
//	p2go fleet submit -devices 64 -workload quickstart -wait   (network-wide job)
//	curl -s localhost:9095/jobs/j-000001/trace > trace.json   (load in Perfetto)
//	curl -s localhost:9095/metrics
//
// Every job runs under a span tracer; GET /jobs/{id}/trace returns the
// job's span tree as Chrome trace-event JSON, and -trace-dir additionally
// persists each job's trace to <dir>/<job-id>.trace.json. -pprof mounts
// the net/http/pprof handlers under /debug/pprof/ for live CPU and heap
// profiling of the daemon itself.
//
// Continuous profiling: -profile-dir makes the daemon capture CPU+heap
// pprof snapshots of itself every -profile-every (crash-safe writes,
// newest -profile-keep per kind retained), served at GET /debug/profiles
// (list) and GET /debug/profiles/{id} (raw pprof; `p2go profiles
// list|get|capture` wraps them). Every job report also carries a
// `resources` block — CPU seconds, allocations, GC cycles, peak heap —
// and the same numbers land on the job's root span and the
// p2god_job_cpu_seconds / p2god_job_allocs_total metric families. The
// stored CPU captures are mergeable into a PGO profile; see
// `cmd/experiments -pgo`.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, queued jobs are
// requeued via the journal (canceled when -journal is unset), and running
// jobs get -drain-timeout to finish before their contexts are canceled.
// With -journal set, jobs that were queued or running when the process
// died — graceful drain or kill -9 alike — are recovered on the next
// start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"p2go/internal/cluster"
	"p2go/internal/obs"
	"p2go/internal/prof"
	"p2go/internal/service"
)

// options collects the daemon's flag values.
type options struct {
	listen       string
	workers      int
	queue        int
	jobTimeout   time.Duration
	parallelism  int
	cacheEntries int
	cacheDir     string
	drainTimeout time.Duration
	journalPath  string
	traceDir     string
	pprofOn      bool
	logLevel     string
	clusterDir   string
	replicaID    string
	peers        string
	leaseTTL     time.Duration
	profileDir   string
	profileEvery time.Duration
	profileCPU   time.Duration
	profileKeep  int
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "127.0.0.1:9095", "HTTP listen address")
	flag.IntVar(&o.workers, "workers", 2, "worker-pool size")
	flag.IntVar(&o.queue, "queue", 16, "job queue depth (submissions beyond it get 429)")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 0, "per-job timeout (0 = none; jobs may request their own)")
	flag.IntVar(&o.parallelism, "parallelism", 0, "default per-job workers for sharded replay and candidate probes (0 = all CPUs, 1 = sequential; jobs may override)")
	flag.IntVar(&o.cacheEntries, "cache-entries", 512, "artifact cache capacity (entries)")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "spill byte artifacts to this directory (optional)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 15*time.Second, "how long running jobs may finish on shutdown")
	flag.StringVar(&o.journalPath, "journal", "", "crash-safe job journal; queued/running jobs are recovered from it on restart (optional)")
	flag.StringVar(&o.traceDir, "trace-dir", "", "persist each job's Chrome trace-event JSON to this directory (optional)")
	flag.BoolVar(&o.pprofOn, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.StringVar(&o.logLevel, "log-level", "", "log verbosity on stderr: debug, info (default), warn, error")
	flag.StringVar(&o.clusterDir, "cluster-dir", "", "join the replica group coordinating through this shared directory (optional)")
	flag.StringVar(&o.replicaID, "replica-id", "", "this replica's unique, stable ID within the group (required with -cluster-dir)")
	flag.StringVar(&o.peers, "peers", "", "comma-separated HTTP addresses of the replica set, served at GET /cluster for client routing")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", cluster.DefaultTTL, "membership/job lease time-to-live; a replica missing renewal this long is presumed dead")
	flag.StringVar(&o.profileDir, "profile-dir", "", "store periodic CPU+heap self-captures in this directory, served at GET /debug/profiles (optional)")
	flag.DurationVar(&o.profileEvery, "profile-every", 5*time.Minute, "self-capture cadence (0 disables the periodic loop; POST /debug/profiles/capture still works)")
	flag.DurationVar(&o.profileCPU, "profile-cpu", prof.DefaultCPUDuration, "how long each CPU self-capture samples")
	flag.IntVar(&o.profileKeep, "profile-keep", prof.DefaultKeep, "self-captures retained per kind (cpu, heap); older ones are deleted")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "p2god:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	level, err := obs.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level)

	// Joining a replica group defaults the journal and cache spill into
	// the shared directory: peers read our journal to reclaim work, and
	// the shared spill is what lets a survivor serve our results.
	var node *cluster.Node
	if o.clusterDir != "" {
		if o.replicaID == "" {
			return fmt.Errorf("-cluster-dir requires -replica-id")
		}
		node, err = cluster.Join(cluster.Config{Dir: o.clusterDir, ID: o.replicaID, TTL: o.leaseTTL})
		if err != nil {
			return err
		}
		if o.journalPath == "" {
			o.journalPath = node.JournalPath(o.replicaID)
		} else if o.journalPath != node.JournalPath(o.replicaID) {
			// Peers can only reclaim our jobs if they can find our
			// journal, and they look for it at the group's well-known
			// path. A journal anywhere else silently disables takeover.
			return fmt.Errorf("-journal must be left unset with -cluster-dir (the group journal lives at %s)", node.JournalPath(o.replicaID))
		}
		if o.cacheDir == "" {
			o.cacheDir = filepath.Join(o.clusterDir, "spill")
			if err := os.MkdirAll(o.cacheDir, 0o755); err != nil {
				return fmt.Errorf("cluster spill dir: %w", err)
			}
		} else if o.cacheDir != filepath.Join(o.clusterDir, "spill") {
			// Not fatal — a survivor just recomputes rows it cannot find
			// in its own spill — but it defeats the shared-cache half of
			// the HA story, so say so.
			logger.Warn("custom -cache-dir with -cluster-dir: peers cannot re-serve this replica's spilled results",
				"cache_dir", o.cacheDir, "shared", filepath.Join(o.clusterDir, "spill"))
		}
		logger.Info("joined replica group", "dir", o.clusterDir, "replica", o.replicaID,
			"lease_ttl", o.leaseTTL.String(), "peers", o.peers)
	}

	var journal *service.Journal
	if o.journalPath != "" {
		journal, err = service.OpenJournal(o.journalPath)
		if err != nil {
			return err
		}
		defer journal.Close()
	}
	if o.traceDir != "" {
		if err := os.MkdirAll(o.traceDir, 0o755); err != nil {
			return fmt.Errorf("trace dir: %w", err)
		}
	}
	var peers []string
	for _, p := range strings.Split(o.peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	var store *prof.Store
	if o.profileDir != "" {
		store, err = prof.NewStore(prof.StoreConfig{
			Dir:         o.profileDir,
			Keep:        o.profileKeep,
			CPUDuration: o.profileCPU,
		})
		if err != nil {
			return err
		}
	}
	m := service.NewManager(service.ManagerConfig{
		Workers:     o.workers,
		QueueDepth:  o.queue,
		JobTimeout:  o.jobTimeout,
		Parallelism: o.parallelism,
		Cache:       service.NewCache(o.cacheEntries, o.cacheDir),
		Journal:     journal,
		TraceDir:    o.traceDir,
		Cluster:     node,
		Peers:       peers,
		Profiles:    store,
		Logger:      logger,
	})
	if journal != nil {
		pending, warnings, err := journal.Recover()
		if err != nil {
			return fmt.Errorf("journal recovery: %w", err)
		}
		for _, w := range warnings {
			logger.Warn("journal recovery", "warning", w)
		}
		if len(pending) > 0 {
			accepted, dropped := m.Requeue(pending)
			logger.Info("recovered journaled jobs", "accepted", accepted, "dropped", dropped)
		}
	}
	m.Start()

	if store != nil {
		loopCtx, stopLoop := context.WithCancel(context.Background())
		defer stopLoop()
		if o.profileEvery > 0 {
			go store.Run(loopCtx, o.profileEvery)
		}
		logger.Info("self-profiling enabled", "dir", o.profileDir,
			"every", o.profileEvery.String(), "cpu", o.profileCPU.String(),
			"keep", o.profileKeep)
	}

	handler := service.NewHandler(m)
	if o.pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{Addr: o.listen, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", o.listen, "workers", o.workers,
			"queue", o.queue, "trace_dir", o.traceDir)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("draining", "timeout", o.drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	rep := m.Drain(o.drainTimeout)
	if len(rep.Requeued) > 0 {
		logger.Info("requeued queued jobs for recovery", "jobs", fmt.Sprint(rep.Requeued))
	}
	if len(rep.Canceled) > 0 {
		logger.Info("canceled queued jobs (no -journal)", "jobs", fmt.Sprint(rep.Canceled))
	}
	logger.Info("stopped")
	return <-errc
}
