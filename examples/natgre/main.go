// Natgre: the dependency-removal example. NAT and GRE both rewrite the
// IPv4 addresses, so static analysis chains them; profiling shows no
// packet uses both features, and P2GO rewrites the program so GRE applies
// only when NAT misses — the compiler then places both features in the
// same stage.
//
//	go run ./examples/natgre
package main

import (
	"fmt"
	"log"

	"p2go"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

func main() {
	prog, err := p2go.ParseProgram(programs.NATGRE)
	if err != nil {
		log.Fatal(err)
	}
	cfg := programs.NATGREConfig()
	trace := trafficgen.NATGRETrace(trafficgen.NATGRESpec{Seed: 1})

	compiled, err := p2go.Compile(prog, p2go.DefaultTarget())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== dependency graph (before) ==")
	for _, e := range compiled.Deps.Edges {
		fmt.Printf("  %s -> %s\n", e.From, e.To)
	}
	fmt.Println("\n== mapping (before) ==")
	fmt.Print(compiled.Mapping.Render())

	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== observations ==")
	for _, o := range res.Observations {
		fmt.Println(o)
	}
	fmt.Println("\n== optimized control flow ==")
	fmt.Println(p2go.PrintProgram(res.Optimized))

	report, err := p2go.VerifyEquivalence(res, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("behavior check:", report)
}
