// Quickstart: parse a P4_14 program, compile it onto the RMT target model,
// profile it against generated traffic, and run the P2GO optimizer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"p2go"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

func main() {
	// 1. Parse and check the program (a minimal L3 router).
	prog, err := p2go.ParseProgram(programs.Quickstart)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Compile: stage mapping + dependency graph + control graph.
	compiled, err := p2go.Compile(prog, p2go.DefaultTarget())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== compiler output ==")
	fmt.Print(compiled.Mapping.Render())

	// 3. Install rules and profile against a generated trace.
	cfg, err := p2go.ParseRules(programs.QuickstartRulesText)
	if err != nil {
		log.Fatal(err)
	}
	trace := trafficgen.QuickstartTrace(2000, 7)
	prof, err := p2go.RunProfile(prog, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== profile ==")
	fmt.Print(prof.Render())

	// 4. Run the optimizer. The router is already tight: P2GO reports
	// what it checked and changes nothing.
	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== optimization ==")
	fmt.Print(p2go.RenderHistory(res.History))
	if len(res.Observations) == 0 {
		fmt.Println("no optimization opportunities — the program is already minimal")
	}
	for _, o := range res.Observations {
		fmt.Println(o)
	}
}
