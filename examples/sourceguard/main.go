// Sourceguard: the memory-reduction example. The DHCP-snooping Bloom
// filter narrowly prevents one register row from sharing a stage with the
// ingress ACL; P2GO's binary search finds the minimum reduction (8.4%)
// that saves the stage and verifies the profile is unchanged.
//
//	go run ./examples/sourceguard
package main

import (
	"fmt"
	"log"

	"p2go"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

func main() {
	prog, err := p2go.ParseProgram(programs.Sourceguard)
	if err != nil {
		log.Fatal(err)
	}
	cfg := programs.SourceguardConfig()
	trace := trafficgen.SourceguardTrace(trafficgen.SourceguardSpec{Seed: 1})

	before, err := p2go.Compile(prog, p2go.DefaultTarget())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== before ==")
	fmt.Print(before.Mapping.Render())

	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== observations ==")
	for _, o := range res.Observations {
		fmt.Println(o)
	}
	after, err := p2go.Compile(res.Optimized, p2go.DefaultTarget())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== after ==")
	fmt.Print(after.Mapping.Render())

	r1 := res.Optimized.Register("bf_r1")
	fmt.Printf("\nbf_r1: %d -> %d cells (%.1f%% reduction, paper: 8.4%%)\n",
		programs.SourceguardBFCells, r1.InstanceCount,
		100*float64(programs.SourceguardBFCells-r1.InstanceCount)/float64(programs.SourceguardBFCells))

	report, err := p2go.VerifyEquivalence(res, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("behavior check:", report)
}
