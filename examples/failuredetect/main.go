// Failuredetect: the Blink-inspired failure-detection example with a live
// controller. P2GO offloads the retransmission-counting CMS branch
// (4 -> 2 stages); this example then starts the generated controller
// program behind a TCP packet-in server, replays the redirected packets
// over the wire, and reports the alarms the controller raises.
//
//	go run ./examples/failuredetect
package main

import (
	"fmt"
	"log"
	"net"

	"p2go"
	"p2go/internal/controller"
	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

func main() {
	prog, err := p2go.ParseProgram(programs.FailureDetection)
	if err != nil {
		log.Fatal(err)
	}
	cfg := programs.FailureConfig()
	trace := trafficgen.FailureTrace(trafficgen.FailureSpec{Seed: 1})

	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== optimization ==")
	fmt.Print(p2go.RenderHistory(res.History))
	fmt.Printf("offloaded: %v (%.2f%% of traffic redirected)\n\n",
		res.OffloadedTables, 100*res.RedirectedFraction)

	// Start the controller behind a TCP packet-in server.
	ctl, err := p2go.NewController(res.ControllerProgram, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := controller.NewServer(ctl)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	fmt.Println("controller listening on", l.Addr())

	// Build the optimized data plane and wire redirected packets to the
	// controller over TCP.
	ast := p4.Clone(res.Optimized)
	if err := p4.Check(ast); err != nil {
		log.Fatal(err)
	}
	irProg, err := ir.Build(ast)
	if err != nil {
		log.Fatal(err)
	}
	dataPlane, err := sim.New(irProg, res.OptimizedConfig, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	client, err := controller.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	var redirected, notifications int
	for _, pkt := range trace.Packets {
		out, err := dataPlane.Process(sim.Input{Port: pkt.Port, Data: pkt.Data})
		if err != nil {
			log.Fatal(err)
		}
		if !out.ToCPU {
			continue
		}
		redirected++
		verdict, err := client.Submit(uint16(pkt.Port), pkt.Data)
		if err != nil {
			log.Fatal(err)
		}
		if verdict.Code == controller.WireVerdictNotify {
			notifications++
		}
	}
	fmt.Printf("replayed %d packets: %d redirected over TCP, %d failure alarms\n",
		len(trace.Packets), redirected, notifications)
	stats := ctl.Stats()
	fmt.Printf("controller stats: handled=%d passed=%d notified=%d\n",
		stats.Handled, stats.Passed, stats.Notified)
	if notifications == 0 {
		log.Fatal("expected the failure burst to raise alarms")
	}
	fmt.Println("the failed prefix was reported to the controller — detection preserved after offload")
}
