// Adaptive: the §6 "dynamic compilation" loop. The Ex. 1 firewall is
// optimized offline (the 2%-DNS profile lets P2GO offload the DNS branch),
// then deployed behind an online monitor. When the live traffic shifts —
// DNS jumps to 30% — the monitor flags the baseline profile as stale,
// records the recent window as a fresh trace, and re-runs P2GO: the hot
// DNS branch is no longer offloaded.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand"

	"p2go"
	"p2go/internal/packet"
	"p2go/internal/programs"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

func main() {
	prog, err := p2go.ParseProgram(programs.Ex1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := programs.Ex1Config()
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimization: %d -> %d stages, offloaded %v (%.1f%% redirected)\n",
		res.StagesBefore(), res.StagesAfter(), res.OffloadedTables, 100*res.RedirectedFraction)

	mon, err := p2go.NewOnlineMonitor(res.Optimized, res.OptimizedConfig, res.FinalProfile,
		p2go.OnlineConfig{WindowSize: 2000, SampleEvery: 4, RecordLast: 6000})
	if err != nil {
		log.Fatal(err)
	}

	// Phase A: live traffic matches the profile — no drift.
	fresh, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	for _, pkt := range fresh.Packets[:6000] {
		if _, err := mon.Process(sim.Input{Port: pkt.Port, Data: pkt.Data}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("representative traffic: %d windows, stale=%v\n", mon.Windows(), mon.Stale())

	// Phase B: traffic shifts — a DNS surge.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6000; i++ {
		var data []byte
		if rng.Float64() < 0.30 {
			data = packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoUDP,
					Src: packet.IP(10, 9, byte(rng.Intn(250)), byte(1+rng.Intn(250))),
					Dst: packet.IP(10, 0, 0, 53)},
				&packet.UDP{SrcPort: 5353, DstPort: packet.PortDNS},
				&packet.DNS{ID: uint16(i), QDCount: 1},
			)
		} else {
			data = packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoTCP,
					Src: packet.IP(10, 20, 0, byte(1+rng.Intn(250))),
					Dst: packet.IP(10, 0, 1, byte(1+rng.Intn(250)))},
				&packet.TCP{SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 443,
					Seq: rng.Uint32(), Flags: packet.TCPAck},
			)
		}
		if _, err := mon.Process(sim.Input{Port: 1, Data: data}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after the DNS surge: stale=%v\n", mon.Stale())
	for _, d := range mon.Drifts() {
		fmt.Println("  drift:", d)
	}
	if !mon.Stale() {
		log.Fatal("expected the monitor to flag staleness")
	}

	// Re-optimize the ORIGINAL program with the recorded fresh trace.
	res2, err := p2go.Optimize(res.Original, cfg, mon.RecentTrace(), p2go.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-optimization on the fresh trace: %d -> %d stages, offloaded %v\n",
		res2.StagesBefore(), res2.StagesAfter(), res2.OffloadedTables)
	for _, tbl := range res2.OffloadedTables {
		if tbl == "Sketch_1" {
			log.Fatal("the hot DNS branch must not be offloaded anymore")
		}
	}
	fmt.Println("the hot DNS branch stays in the data plane — profile-guided decisions adapt")
}
