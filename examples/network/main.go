// Network: the §6 "network-wide compilation" demonstrator. Two switches —
// the Ex. 1 edge firewall and a core router — are wired into a topology;
// the enterprise traffic is injected at the edge, each device's *observed*
// traffic is recorded as its own representative trace, and P2GO optimizes
// every device with the trace it actually saw.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"

	"p2go"
	"p2go/internal/core"
	"p2go/internal/network"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

const coreRouter = `
header_type ethernet_t {
    fields { dstAddr : 48; srcAddr : 48; etherType : 16; }
}
header_type ipv4_t {
    fields {
        version : 4; ihl : 4; diffserv : 8; totalLen : 16;
        identification : 16; flags : 3; fragOffset : 13;
        ttl : 8; protocol : 8; hdrChecksum : 16;
        srcAddr : 32; dstAddr : 32;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 { extract(ipv4); return ingress; }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
action core_drop() { drop(); }
table core_routes {
    reads { ipv4.dstAddr : lpm; }
    actions { fwd; core_drop; }
    size : 64;
    default_action : core_drop;
}
control ingress {
    if (valid(ipv4)) {
        apply(core_routes);
    }
}
`

func main() {
	topo := network.NewTopology()
	if err := topo.AddDevice("edge", p4MustParse(programs.Ex1), programs.Ex1Config()); err != nil {
		log.Fatal(err)
	}
	coreCfg, err := p2go.ParseRules("table_add core_routes fwd 10.0.0.0/8 => 12")
	if err != nil {
		log.Fatal(err)
	}
	if err := topo.AddDevice("corert", p4MustParse(coreRouter), coreCfg); err != nil {
		log.Fatal(err)
	}
	for _, port := range []uint64{3, 4, 5} {
		if err := topo.Link(network.Hop{Device: "edge", Port: port}, network.Hop{Device: "corert", Port: 1}); err != nil {
			log.Fatal(err)
		}
	}

	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	injections := make([]network.Injection, len(trace.Packets))
	for i, pkt := range trace.Packets {
		injections[i] = network.Injection{At: network.Hop{Device: "edge", Port: pkt.Port}, Data: pkt.Data}
	}

	traces, err := topo.CollectDeviceTraces(injections)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-device observed traffic:")
	for _, dev := range topo.Devices() {
		fmt.Printf("  %-8s %6d packets\n", dev, len(traces[dev].Packets))
	}

	report, err := topo.OptimizeAll(injections, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range report.Skipped {
		fmt.Printf("  skipped %-8s %s\n", s.Device, s.Reason)
	}
	if err := report.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-device optimization:")
	for _, r := range report.Results {
		fmt.Printf("  %-8s %d -> %d stages", r.Device, r.Result.StagesBefore(), r.Result.StagesAfter())
		if len(r.Result.OffloadedTables) > 0 {
			fmt.Printf("  (offloaded %v)", r.Result.OffloadedTables)
		}
		fmt.Println()
	}
	fmt.Printf("\nfleet total: %d -> %d stages\n",
		report.TotalStagesBefore(), report.TotalStagesAfter())
}

func p4MustParse(src string) *p2go.Program {
	prog, err := p2go.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	return prog
}
