// Firewall: the paper's running example end to end. An enterprise IP
// router turned stateful firewall (Ex. 1) is profiled against a calibrated
// traffic mix and optimized through all three phases, reproducing Table 2's
// 8 -> 7 -> 6 -> 3 stage reduction. The example then composes the optimized
// data plane with the generated controller program and verifies that the
// deployed system behaves exactly like the original on every packet.
//
//	go run ./examples/firewall
package main

import (
	"fmt"
	"log"

	"p2go"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

func main() {
	prog, err := p2go.ParseProgram(programs.Ex1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := programs.Ex1Config()
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: the profile on its own (the Ex. 1 annotation + Table 1).
	prof, err := p2go.RunProfile(prog, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Phase 1: profile ==")
	fmt.Print(prof.Render())

	// Phases 2-4.
	res, err := p2go.Optimize(prog, cfg, trace, p2go.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== observations (accept/reject material for the operator) ==")
	for _, o := range res.Observations {
		fmt.Println(o)
	}
	fmt.Println("\n== stage history (Table 2) ==")
	fmt.Print(p2go.RenderHistory(res.History))

	// The optimized program and the controller program are both ordinary
	// P4 source.
	fmt.Println("\n== optimized program ==")
	fmt.Println(p2go.PrintProgram(res.Optimized))
	if res.ControllerProgram != nil {
		fmt.Println("== controller program (offloaded segment) ==")
		fmt.Println(p2go.PrintProgram(res.ControllerProgram))
	}

	// Deploy: optimized data plane + controller, equivalent to the
	// original on the trace.
	report, err := p2go.VerifyEquivalence(res, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== deployment check ==")
	fmt.Println(report)
}
