package p2go

// Benchmark harness: one benchmark per paper table/figure (see DESIGN.md
// §5 for the experiment index) plus the ablations and micro-benchmarks of
// the substrate. Each experiment benchmark asserts the headline result —
// who wins, by how many stages — and reports it via b.ReportMetric, so
// `go test -bench=.` regenerates the evaluation.

import (
	"sync"
	"testing"

	"p2go/internal/controller"
	"p2go/internal/core"
	"p2go/internal/deps"
	"p2go/internal/ir"
	"p2go/internal/network"
	"p2go/internal/online"
	"p2go/internal/p4"
	"p2go/internal/p5"
	"p2go/internal/packet"
	"p2go/internal/profile"
	"p2go/internal/programs"
	"p2go/internal/sim"
	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
)

var (
	ex1TraceOnce sync.Once
	ex1Trace     *trafficgen.Trace
)

func enterpriseTrace(b *testing.B) *trafficgen.Trace {
	b.Helper()
	ex1TraceOnce.Do(func() {
		t, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
		if err != nil {
			b.Fatalf("trace: %v", err)
		}
		ex1Trace = t
	})
	return ex1Trace
}

// BenchmarkProfileEx1 regenerates the Ex. 1 hit-rate annotation (EX1):
// profiling 20k packets through the instrumented firewall.
func BenchmarkProfileEx1(b *testing.B) {
	trace := enterpriseTrace(b)
	ast := p4.MustParse(programs.Ex1)
	cfg := programs.Ex1Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := profile.Run(ast, cfg, trace)
		if err != nil {
			b.Fatal(err)
		}
		if prof.HitRate("ACL_UDP") != 0.08 {
			b.Fatalf("ACL_UDP hit rate = %f, want 0.08", prof.HitRate("ACL_UDP"))
		}
	}
	b.ReportMetric(float64(len(trace.Packets))/b.Elapsed().Seconds()*float64(b.N), "pkts/s")
}

// BenchmarkDependencyGraphEx1 regenerates Fig. 1 (FIG1): the dependency
// graph of the Ex. 1 program.
func BenchmarkDependencyGraphEx1(b *testing.B) {
	ast := p4.MustParse(programs.Ex1)
	if err := p4.Check(ast); err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := deps.Build(prog)
		if g.Edge("ACL_UDP", "ACL_DHCP") == nil {
			b.Fatal("missing the ACL dependency edge")
		}
		if len(g.LongestPathEdges()) == 0 {
			b.Fatal("no longest-path candidates")
		}
	}
}

// BenchmarkNonExclusiveSets regenerates Table 1 (TAB1): the four sets of
// non-exclusive actions.
func BenchmarkNonExclusiveSets(b *testing.B) {
	trace := enterpriseTrace(b)
	prof, err := profile.Run(p4.MustParse(programs.Ex1), programs.Ex1Config(), trace)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := prof.NonExclusiveSets(2)
		if len(sets) != 4 {
			b.Fatalf("sets = %d, want 4", len(sets))
		}
	}
}

// BenchmarkPipelineEx1 regenerates Table 2 (TAB2): the full P2GO pipeline
// on Ex. 1, 8 -> 7 -> 6 -> 3 stages.
func BenchmarkPipelineEx1(b *testing.B) {
	trace := enterpriseTrace(b)
	cfg := programs.Ex1Config()
	var res *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(core.Options{}).Optimize(p4.MustParse(programs.Ex1), cfg, trace)
		if err != nil {
			b.Fatal(err)
		}
		if res.StagesBefore() != 8 || res.StagesAfter() != 3 {
			b.Fatalf("stages %d -> %d, want 8 -> 3", res.StagesBefore(), res.StagesAfter())
		}
	}
	b.ReportMetric(float64(res.StagesBefore()), "stages_before")
	b.ReportMetric(float64(res.StagesAfter()), "stages_after")
}

// BenchmarkNATGRE regenerates Table 3 row 1 (TAB3a): 4 -> 3 by removing
// the NAT/GRE dependency.
func BenchmarkNATGRE(b *testing.B) {
	trace := trafficgen.NATGRETrace(trafficgen.NATGRESpec{Seed: 1})
	cfg := programs.NATGREConfig()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(core.Options{}).Optimize(p4.MustParse(programs.NATGRE), cfg, trace)
		if err != nil {
			b.Fatal(err)
		}
		if res.StagesBefore() != 4 || res.StagesAfter() != 3 {
			b.Fatalf("stages %d -> %d, want 4 -> 3", res.StagesBefore(), res.StagesAfter())
		}
	}
	b.ReportMetric(float64(res.StagesBefore()), "stages_before")
	b.ReportMetric(float64(res.StagesAfter()), "stages_after")
}

// BenchmarkSourceguard regenerates Table 3 row 2 (TAB3b): 5 -> 4 by
// shrinking one Bloom-filter register 8.4%.
func BenchmarkSourceguard(b *testing.B) {
	trace := trafficgen.SourceguardTrace(trafficgen.SourceguardSpec{Seed: 1})
	cfg := programs.SourceguardConfig()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(core.Options{}).Optimize(p4.MustParse(programs.Sourceguard), cfg, trace)
		if err != nil {
			b.Fatal(err)
		}
		if res.StagesBefore() != 5 || res.StagesAfter() != 4 {
			b.Fatalf("stages %d -> %d, want 5 -> 4", res.StagesBefore(), res.StagesAfter())
		}
		if got := res.Optimized.Register("bf_r1").InstanceCount; got != programs.SourceguardBFReducedCells {
			b.Fatalf("bf_r1 = %d cells, want %d", got, programs.SourceguardBFReducedCells)
		}
	}
	b.ReportMetric(float64(res.StagesBefore()), "stages_before")
	b.ReportMetric(float64(res.StagesAfter()), "stages_after")
	b.ReportMetric(8.4, "register_reduction_pct")
}

// BenchmarkFailureDetection regenerates Table 3 row 3 (TAB3c): 4 -> 2 by
// offloading the CMS branch.
func BenchmarkFailureDetection(b *testing.B) {
	trace := trafficgen.FailureTrace(trafficgen.FailureSpec{Seed: 1})
	cfg := programs.FailureConfig()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(core.Options{}).Optimize(p4.MustParse(programs.FailureDetection), cfg, trace)
		if err != nil {
			b.Fatal(err)
		}
		if res.StagesBefore() != 4 || res.StagesAfter() != 2 {
			b.Fatalf("stages %d -> %d, want 4 -> 2", res.StagesBefore(), res.StagesAfter())
		}
	}
	b.ReportMetric(float64(res.StagesBefore()), "stages_before")
	b.ReportMetric(float64(res.StagesAfter()), "stages_after")
	b.ReportMetric(100*res.RedirectedFraction, "redirected_pct")
}

// BenchmarkAblationOffloadFirst (ABL1): §2.2's phase-ordering argument —
// measuring every offload candidate on the unoptimized Ex. 1 program.
func BenchmarkAblationOffloadFirst(b *testing.B) {
	trace := enterpriseTrace(b)
	cfg := programs.Ex1Config()
	opt := core.New(core.Options{})
	for i := 0; i < b.N; i++ {
		reports, err := opt.OffloadCandidates(p4.MustParse(programs.Ex1), cfg, trace)
		if err != nil {
			b.Fatal(err)
		}
		aclPairSavings := 0
		for _, rep := range reports {
			if len(rep.Segment.Tables) == 2 && rep.Segment.Tables[0] == "ACL_UDP" && rep.Segment.Tables[1] == "ACL_DHCP" {
				if rep.StagesSaved > aclPairSavings {
					aclPairSavings = rep.StagesSaved
				}
			}
		}
		if aclPairSavings < 2 {
			b.Fatalf("pre-phase-2 ACL offload saves %d stages, want >= 2", aclPairSavings)
		}
	}
}

// BenchmarkAblationCMSShrink (ABL2): §3.3's discard decision — the
// reduced Sketch_1 row changes the DNS_Drop hit count.
func BenchmarkAblationCMSShrink(b *testing.B) {
	trace := enterpriseTrace(b)
	cfg := programs.Ex1Config()
	base, err := profile.Run(p4.MustParse(programs.Ex1), cfg, trace)
	if err != nil {
		b.Fatal(err)
	}
	reduced := p4.MustParse(programs.Ex1)
	reduced.Register("cms_r1").InstanceCount = programs.Ex1ReducedSketchCells
	for _, call := range reduced.Action("sketch1_count").Body {
		if call.Name == p4.PrimHashOffset {
			call.Args[3] = p4.IntLit{Value: uint64(programs.Ex1ReducedSketchCells)}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		redProf, err := profile.Run(reduced, cfg, trace)
		if err != nil {
			b.Fatal(err)
		}
		if base.Equal(redProf) {
			b.Fatal("reduced sketch should change the profile")
		}
		if redProf.Hits["DNS_Drop"] <= base.Hits["DNS_Drop"] {
			b.Fatal("reduced sketch should over-count")
		}
	}
}

// BenchmarkP5Baseline (ABL3): the policy-driven baseline saves nothing on
// Ex. 1 while P2GO takes it from 8 to 3 stages.
func BenchmarkP5Baseline(b *testing.B) {
	policy := p5.NewPolicy(map[string][]string{
		"routing":    {"IPv4"},
		"udp-acl":    {"ACL_UDP"},
		"dhcp-guard": {"ACL_DHCP"},
		"dns-limit":  {"Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop"},
	})
	var res *p5.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = p5.Optimize(p4.MustParse(programs.Ex1), policy, tofino.DefaultTarget())
		if err != nil {
			b.Fatal(err)
		}
		if res.StagesAfter != res.StagesBefore {
			b.Fatalf("P5 changed the pipeline: %d -> %d", res.StagesBefore, res.StagesAfter)
		}
	}
	b.ReportMetric(float64(res.StagesBefore), "p5_stages_before")
	b.ReportMetric(float64(res.StagesAfter), "p5_stages_after")
}

// BenchmarkDoesNotFit (ABL4): the oversized 14-stage chain compiles in
// simulation and fits (1 stage) after Phase 2.
func BenchmarkDoesNotFit(b *testing.B) {
	trace := trafficgen.StressTrace(3000, 1)
	cfg := programs.StressConfig()
	src := programs.Stress()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(core.Options{}).Optimize(p4.MustParse(src), cfg, trace)
		if err != nil {
			b.Fatal(err)
		}
		if res.History[0].Fits || res.StagesAfter() != 1 {
			b.Fatalf("stress: fits=%v after=%d, want does-not-fit -> 1 stage",
				res.History[0].Fits, res.StagesAfter())
		}
	}
	b.ReportMetric(float64(res.StagesBefore()), "stages_before")
	b.ReportMetric(float64(res.StagesAfter()), "stages_after")
}

// ---- substrate micro-benchmarks ----

// BenchmarkParseEx1 measures the P4 front end.
func BenchmarkParseEx1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := p4.Parse(programs.Ex1); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(programs.Ex1)))
}

// BenchmarkCompileEx1 measures check + IR + dependency analysis + stage
// allocation.
func BenchmarkCompileEx1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := tofino.CompileSource(programs.Ex1, tofino.DefaultTarget())
		if err != nil {
			b.Fatal(err)
		}
		if res.Mapping.StagesUsed != 8 {
			b.Fatal("wrong mapping")
		}
	}
}

// BenchmarkSimProcess measures single-packet forwarding latency through
// the firewall simulator.
func BenchmarkSimProcess(b *testing.B) {
	ast := p4.MustParse(programs.Ex1)
	if err := p4.Check(ast); err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		b.Fatal(err)
	}
	sw, err := sim.New(prog, programs.Ex1Config(), sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pkt := packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoUDP, Src: packet.IP(10, 9, 0, 1), Dst: packet.IP(10, 0, 0, 99)},
		&packet.UDP{SrcPort: 999, DstPort: 6666},
		packet.Raw("x"),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sw.Process(sim.Input{Port: 1, Data: pkt})
		if err != nil {
			b.Fatal(err)
		}
		if !out.Dropped {
			b.Fatal("blocked port should drop")
		}
	}
}

// BenchmarkTraceGeneration measures the calibrated enterprise generator.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Packets) != 20000 {
			b.Fatal("wrong trace size")
		}
	}
}

// ---- extension benchmarks ----

// BenchmarkMultiDimALU (§6 multi-dimensional optimization): compiling under
// an additional per-stage ALU budget.
func BenchmarkMultiDimALU(b *testing.B) {
	tgt := tofino.DefaultTarget()
	tgt.StageALUs = 8
	for i := 0; i < b.N; i++ {
		res, err := tofino.CompileSource(programs.Ex1, tgt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Mapping.StagesUsed < 8 {
			b.Fatal("ALU constraint cannot shrink the pipeline")
		}
	}
}

// BenchmarkOnlineMonitoring (§6 dynamic compilation): per-packet cost of
// the online profiler at 1-in-4 sampling.
func BenchmarkOnlineMonitoring(b *testing.B) {
	trace := enterpriseTrace(b)
	cfg := programs.Ex1Config()
	res, err := core.New(core.Options{}).Optimize(p4.MustParse(programs.Ex1), cfg, trace)
	if err != nil {
		b.Fatal(err)
	}
	mon, err := online.NewMonitor(res.Optimized, res.OptimizedConfig, res.FinalProfile,
		online.Config{WindowSize: 5000, SampleEvery: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := trace.Packets[i%len(trace.Packets)]
		if _, err := mon.Process(sim.Input{Port: pkt.Port, Data: pkt.Data}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEquivalenceCheck: the full original-vs-deployment comparison
// over the 20k-packet trace.
func BenchmarkEquivalenceCheck(b *testing.B) {
	trace := enterpriseTrace(b)
	cfg := programs.Ex1Config()
	res, err := core.New(core.Options{}).Optimize(p4.MustParse(programs.Ex1), cfg, trace)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := controller.VerifyEquivalence(res.Original, cfg, res.Optimized,
			res.OptimizedConfig, res.ControllerProgram, trace)
		if err != nil {
			b.Fatal(err)
		}
		if !report.Equivalent() {
			b.Fatal(report)
		}
	}
}

// BenchmarkFleetOptimization (§6 network-wide): per-device optimization of
// a two-switch topology fed by a network-level injection.
func BenchmarkFleetOptimization(b *testing.B) {
	trace := enterpriseTrace(b)
	buildTopo := func() *network.Topology {
		topo := network.NewTopology()
		edge := p4.MustParse(programs.Ex1)
		if err := p4.Check(edge); err != nil {
			b.Fatal(err)
		}
		if err := topo.AddDevice("edge", edge, programs.Ex1Config()); err != nil {
			b.Fatal(err)
		}
		return topo
	}
	injections := make([]network.Injection, len(trace.Packets))
	for i, pkt := range trace.Packets {
		injections[i] = network.Injection{At: network.Hop{Device: "edge", Port: pkt.Port}, Data: pkt.Data}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo := buildTopo()
		report, err := topo.OptimizeAll(injections, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if report.TotalStagesAfter() >= report.TotalStagesBefore() {
			b.Fatal("fleet optimization saved nothing")
		}
	}
}
