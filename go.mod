module p2go

go 1.22
