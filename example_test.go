package p2go_test

import (
	"fmt"
	"log"

	"p2go"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

// ExampleCompile shows the compiler driver: parse a program and inspect the
// stage mapping and dependency graph it produces.
func ExampleCompile() {
	prog, err := p2go.ParseProgram(programs.Quickstart)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p2go.Compile(prog, p2go.DefaultTarget())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stages: %d\n", res.Mapping.StagesUsed)
	for _, e := range res.Deps.Edges {
		fmt.Printf("dependency: %s -> %s\n", e.From, e.To)
	}
	// Output:
	// stages: 2
	// dependency: port_acl -> routes
}

// ExampleRunProfile shows Phase 1 on its own: hit rates from a replayed
// trace.
func ExampleRunProfile() {
	prog, err := p2go.ParseProgram(programs.Quickstart)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := p2go.ParseRules(programs.QuickstartRulesText)
	if err != nil {
		log.Fatal(err)
	}
	trace := trafficgen.QuickstartTrace(1000, 1)
	prof, err := p2go.RunProfile(prog, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("port_acl hit rate: %.0f%%\n", 100*prof.HitRate("port_acl"))
	fmt.Printf("routes hit rate: %.0f%%\n", 100*prof.HitRate("routes"))
	// Output:
	// port_acl hit rate: 10%
	// routes hit rate: 90%
}

// ExampleOptimize runs the full pipeline on the paper's Example 1 and
// prints the Table 2 stage counts.
func ExampleOptimize() {
	prog, err := p2go.ParseProgram(programs.Ex1)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := p2go.Optimize(prog, programs.Ex1Config(), trace, p2go.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range res.History {
		fmt.Printf("%s: %d stages\n", h.Label, h.Stages)
	}
	fmt.Printf("offloaded: %v\n", res.OffloadedTables)
	// Output:
	// initial: 8 stages
	// removing-dependencies: 7 stages
	// reducing-memory: 6 stages
	// offloading-code: 3 stages
	// offloaded: [Sketch_1 Sketch_2 Sketch_Min DNS_Drop]
}
