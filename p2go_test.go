package p2go

import (
	"strings"
	"testing"

	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

// TestFacadeQuickstart exercises the whole public API surface the way the
// README's quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	prog, err := ParseProgram(programs.Quickstart)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseRules(programs.QuickstartRulesText)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := Compile(prog, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Mapping.StagesUsed != 2 {
		t.Errorf("quickstart stages = %d, want 2", compiled.Mapping.StagesUsed)
	}
	trace := trafficgen.QuickstartTrace(500, 1)
	prof, err := RunProfile(prog, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if prof.TotalPackets != 500 {
		t.Errorf("profiled %d packets, want 500", prof.TotalPackets)
	}
	res, err := Optimize(prog, cfg, trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := VerifyEquivalence(res, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Equivalent() {
		t.Errorf("quickstart equivalence failed: %s", report)
	}
	if h := RenderHistory(res.History); !strings.Contains(h, "initial") {
		t.Errorf("RenderHistory output: %s", h)
	}
}

// TestFacadeEx1EndToEnd is the headline path through the facade: Table 2's
// 8 -> 3 plus equivalence and controller construction.
func TestFacadeEx1EndToEnd(t *testing.T) {
	prog, err := ParseProgram(programs.Ex1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := programs.Ex1Config()
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(prog, cfg, trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesBefore() != 8 || res.StagesAfter() != 3 {
		t.Fatalf("stages %d -> %d, want 8 -> 3", res.StagesBefore(), res.StagesAfter())
	}
	report, err := VerifyEquivalence(res, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Equivalent() {
		t.Fatalf("equivalence failed: %s", report)
	}
	ctl, err := NewController(res.ControllerProgram, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctl == nil {
		t.Fatal("nil controller")
	}
	// Round-trip the optimized artifacts.
	if _, err := ParseProgram(PrintProgram(res.Optimized)); err != nil {
		t.Errorf("optimized program round trip: %v", err)
	}
	if _, err := ParseRules(FormatRules(res.OptimizedConfig)); err != nil {
		t.Errorf("optimized config round trip: %v", err)
	}
}

func TestParseProgramRejectsBadSource(t *testing.T) {
	if _, err := ParseProgram("table t {}"); err == nil {
		t.Error("expected parse/check error")
	}
	if _, err := ParseProgram("action a() { no_op(); } table t { actions { a; } } control egress { apply(t); }"); err == nil {
		t.Error("expected check error (no ingress)")
	}
}
